// Virtex-II-calibrated resource library: area and delay for datapath
// operators as a function of operand width.
//
// The paper reports area in "equivalent logic gates" (the Xilinx gate-count
// convention for Virtex-II) produced by Xilinx ISE.  We cannot run ISE in
// this environment, so the library prices each operator class from
// datasheet-scale constants: a W-bit ripple/carry-chain adder occupies ~W
// LUT4s, an 18x18 multiply maps to a MULT18x18 hard block, wide shifts by
// variable amounts need log-depth mux stages, and constant shifts are free
// wiring.  Gate equivalents: 1 LUT4 ~= 12 gates, 1 FF ~= 8 gates (the
// conversion Xilinx used in its gate-count methodology).
//
// Delays approximate a Virtex-II -5 speed grade; they drive both operator
// chaining in the scheduler and the achievable-clock estimate.
#pragma once

#include <cstdint>

#include "ir/ir.hpp"

namespace b2h::synth {

/// Functional-unit classes the binder allocates.
enum class FuClass : std::uint8_t {
  kAddSub,    ///< adder/subtractor (also address adds)
  kMul,       ///< MULT18x18-based multiplier
  kDiv,       ///< iterative divider (multi-cycle)
  kLogic,     ///< and/or/xor/nor
  kShift,     ///< variable-amount barrel shifter
  kCompare,   ///< relational comparator
  kMemPort,   ///< BRAM port (load/store)
  kNone,      ///< free: constant shifts, extensions, phis, moves
};

[[nodiscard]] const char* ToString(FuClass cls) noexcept;

/// Classify an IR operation (kNone when it costs no logic).
[[nodiscard]] FuClass ClassifyOp(const ir::Instr& instr) noexcept;

struct ResourceLibrary {
  // --- conversion constants -------------------------------------------
  double gates_per_lut = 7.0;
  double gates_per_ff = 5.0;
  double gates_per_mult18 = 1500.0;  ///< hard multiplier, gate-equivalent

  // --- per-class area (LUTs as a function of width) --------------------
  [[nodiscard]] double FuLuts(FuClass cls, unsigned width) const;
  [[nodiscard]] double FuGates(FuClass cls, unsigned width) const;

  // --- delays (ns, combinational unless noted) --------------------------
  double add_base_ns = 1.2;
  double add_per_bit_ns = 0.045;   ///< carry chain
  double mul_ns = 6.2;             ///< MULT18x18 clock-to-out + routing
  double logic_ns = 0.9;
  double shift_var_ns = 2.8;       ///< barrel shifter
  double cmp_base_ns = 1.0;
  double cmp_per_bit_ns = 0.035;
  double mux_ns = 0.8;             ///< per shared-FU input stage
  double bram_access_ns = 3.0;     ///< synchronous BRAM: full cycle anyway

  /// Latency in whole cycles for multi-cycle units (0 = combinational,
  /// chaining allowed subject to the delay budget).
  unsigned div_latency_cycles = 8;
  unsigned load_latency_cycles = 1;  ///< synchronous BRAM read

  [[nodiscard]] double OpDelayNs(const ir::Instr& instr) const;
  [[nodiscard]] unsigned OpLatencyCycles(const ir::Instr& instr) const;

  // --- registers / muxes / control ---------------------------------------
  [[nodiscard]] double RegisterGates(unsigned width) const {
    return gates_per_ff * width;
  }
  /// Gates for an n-input, w-bit multiplexer in front of a shared FU.
  [[nodiscard]] double MuxGates(unsigned inputs, unsigned width) const {
    if (inputs <= 1) return 0.0;
    return (inputs - 1) * width * 0.40 * gates_per_lut;
  }
  [[nodiscard]] double FsmGates(unsigned states) const {
    // One-hot state register plus next-state/output logic.
    return states * gates_per_ff + states * 1.2 * gates_per_lut;
  }
  /// Glue/control overhead applied to the datapath total.
  double control_overhead = 0.12;
};

}  // namespace b2h::synth
