#include "synth/synth.hpp"

namespace b2h::synth {

Result<SynthesizedRegion> Synthesize(const HwRegion& region,
                                     const decomp::AliasAnalysis* alias,
                                     const SynthOptions& options) {
  if (!region.synthesizable) {
    return Status::Error(ErrorKind::kUnsupported,
                         region.name + ": " + region.reject_reason);
  }
  SynthesizedRegion out;
  out.region = region;
  out.schedule =
      ScheduleRegion(region, alias, options.library, options.schedule);
  if (Status status = VerifySchedule(region, out.schedule, options.library,
                                     options.schedule);
      !status.ok()) {
    return status;
  }
  out.area = EstimateArea(region, out.schedule, options.library);
  out.clock_mhz = AchievableClockMhz(out.schedule, options.schedule);
  out.hw_cycles = EstimateCycles(region, out.schedule);
  if (options.emit_vhdl) out.vhdl = EmitVhdl(region, out.schedule);
  return out;
}

}  // namespace b2h::synth
