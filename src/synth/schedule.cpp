#include "synth/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace b2h::synth {
namespace {

using ir::Opcode;

bool IsMemOp(const ir::Instr* instr) {
  return instr->op == Opcode::kLoad || instr->op == Opcode::kStore;
}

bool IsBodyOp(const ir::Instr* instr) {
  return instr->op != Opcode::kPhi && !instr->is_terminator();
}

/// Dependence edges within a block: data (SSA operands defined in the same
/// block) and memory program-order edges, relaxed by alias information.
struct BlockDeps {
  // For each instr: list of (producer, is_data) it must wait for.
  std::unordered_map<const ir::Instr*, std::vector<const ir::Instr*>> preds;
};

BlockDeps ComputeDeps(const ir::Block* block,
                      const decomp::AliasAnalysis* alias) {
  BlockDeps deps;
  std::vector<const ir::Instr*> mem_ops;
  for (const ir::Instr* instr : block->instrs) {
    if (!IsBodyOp(instr)) continue;
    auto& list = deps.preds[instr];
    for (const ir::Value& operand : instr->operands) {
      if (operand.is_instr() && operand.def->parent == block &&
          IsBodyOp(operand.def)) {
        list.push_back(operand.def);
      }
    }
    if (IsMemOp(instr)) {
      const bool is_store = instr->op == Opcode::kStore;
      for (const ir::Instr* prior : mem_ops) {
        const bool prior_store = prior->op == Opcode::kStore;
        if (!is_store && !prior_store) continue;  // load-load: no edge
        const bool may_alias =
            alias == nullptr ||
            alias->MayAlias(instr, prior);
        if (may_alias) list.push_back(prior);
      }
      mem_ops.push_back(instr);
    }
  }
  return deps;
}

struct StepUsage {
  unsigned mem = 0;
  unsigned mul = 0;
  unsigned div = 0;
};

}  // namespace

RegionSchedule ScheduleRegion(const HwRegion& region,
                              const decomp::AliasAnalysis* alias,
                              const ResourceLibrary& lib,
                              const ScheduleOptions& options) {
  RegionSchedule schedule;

  for (const ir::Block* block : region.blocks) {
    BlockSchedule bs;
    bs.block = block;
    const BlockDeps deps = ComputeDeps(block, alias);
    std::vector<StepUsage> usage;
    // Per-instr: completion step (first step a consumer may read the value
    // in a *later* step) and chained-delay bookkeeping.
    std::unordered_map<const ir::Instr*, int> ready_step;
    std::unordered_map<const ir::Instr*, double> slack_delay;  // within step
    std::unordered_map<const ir::Instr*, int> chain_counter_per_step;
    std::map<int, int> chain_next;

    for (const ir::Instr* instr : block->instrs) {
      if (!IsBodyOp(instr)) continue;
      const FuClass cls = ClassifyOp(*instr);
      const double delay = lib.OpDelayNs(*instr);
      const unsigned latency = lib.OpLatencyCycles(*instr);

      // Earliest step from dependences, with chaining.
      int step = 0;
      double chain_in = 0.0;  // accumulated delay feeding this op
      for (const ir::Instr* producer : deps.preds.at(instr)) {
        const int p_step = bs.step_of.at(producer);
        const unsigned p_latency = lib.OpLatencyCycles(*producer);
        int earliest;
        double producer_out = 0.0;
        if (p_latency > 0) {
          earliest = p_step + static_cast<int>(p_latency);
        } else if (options.enable_chaining) {
          earliest = p_step;  // may chain in the same step
          producer_out = slack_delay.at(producer);
        } else {
          earliest = p_step + 1;
        }
        if (earliest > step) {
          step = earliest;
          chain_in = producer_out;
        } else if (earliest == step) {
          chain_in = std::max(chain_in, producer_out);
        }
      }
      // Memory ordering edges force at least the next step after a store
      // (stores commit at end of step) — handled via latency 0 + chaining
      // rule below: memory ops never chain with each other.
      // Chaining feasibility: total delay must fit the clock period.
      while (true) {
        if (options.enable_chaining && chain_in > 0.0 &&
            chain_in + delay > options.clock_ns) {
          // Start a fresh step instead of chaining.
          ++step;
          chain_in = 0.0;
          continue;
        }
        // Memory/mult/div resource limits per step.
        if (static_cast<std::size_t>(step) >= usage.size()) {
          usage.resize(static_cast<std::size_t>(step) + 1);
        }
        StepUsage& u = usage[static_cast<std::size_t>(step)];
        if (cls == FuClass::kMemPort && u.mem >= options.mem_ports) {
          ++step;
          chain_in = 0.0;
          continue;
        }
        if (cls == FuClass::kMul && u.mul >= options.max_mults) {
          ++step;
          chain_in = 0.0;
          continue;
        }
        if (cls == FuClass::kDiv && u.div >= options.max_divs) {
          ++step;
          chain_in = 0.0;
          continue;
        }
        if (cls == FuClass::kMemPort) ++u.mem;
        if (cls == FuClass::kMul) ++u.mul;
        if (cls == FuClass::kDiv) ++u.div;
        break;
      }

      bs.step_of[instr] = step;
      bs.chain_pos[instr] = chain_next[step]++;
      ready_step[instr] = step + std::max(1u, latency);
      const double total_delay = chain_in + delay;
      slack_delay[instr] = total_delay;
      bs.max_step_delay_ns = std::max(bs.max_step_delay_ns, total_delay);
      if (static_cast<int>(bs.num_steps) <= step) bs.num_steps = step + 1;
    }

    // Account for load latency: a load issued in the last step still needs
    // its data cycle before the block can exit.
    for (const auto& [instr, step] : bs.step_of) {
      const unsigned latency = lib.OpLatencyCycles(*instr);
      if (latency > 0 &&
          step + static_cast<int>(latency) >= bs.num_steps) {
        bs.num_steps = step + static_cast<int>(latency);
        // The value is consumed by a later block; it is registered at the
        // end of its data cycle, which the +latency above covers.
      }
    }
    schedule.critical_path_ns =
        std::max(schedule.critical_path_ns, bs.max_step_delay_ns);
    schedule.total_states += bs.num_steps;
    schedule.blocks.push_back(std::move(bs));
  }

  // Loop pipelining for a single-block self-loop region.
  if (options.enable_pipelining && region.loop != nullptr &&
      region.loop->blocks.size() == 1) {
    const ir::Block* body = region.loop->header;
    const BlockSchedule* bs = schedule.ForBlock(body);
    if (bs != nullptr) {
      // Resource-constrained II.
      unsigned mem_ops = 0;
      unsigned muls = 0;
      unsigned divs = 0;
      for (const ir::Instr* instr : body->instrs) {
        if (!IsBodyOp(instr)) continue;
        switch (ClassifyOp(*instr)) {
          case FuClass::kMemPort: ++mem_ops; break;
          case FuClass::kMul: ++muls; break;
          case FuClass::kDiv: ++divs; break;
          default: break;
        }
      }
      unsigned ii = 1;
      ii = std::max(ii, (mem_ops + options.mem_ports - 1) / options.mem_ports);
      ii = std::max(ii, options.max_mults == 0
                            ? muls
                            : (muls + options.max_mults - 1) / options.max_mults);
      if (divs > 0) ii = std::max(ii, lib.div_latency_cycles);

      // Recurrence II: longest latency cycle phi -> ... -> latch operand.
      const std::size_t latch_index = [&]() -> std::size_t {
        for (std::size_t i = 0; i < body->preds.size(); ++i) {
          if (body->preds[i] == body) return i;
        }
        return 0;
      }();
      for (const ir::Instr* phi : body->Phis()) {
        // Longest path (in ns + whole-cycle latencies) from this phi to the
        // latch operand over in-block dependences.
        std::unordered_map<const ir::Instr*, double> dist;  // in ns
        dist[phi] = 0.0;
        double worst_ns = 0.0;
        for (const ir::Instr* instr : body->instrs) {
          if (!IsBodyOp(instr)) continue;
          double best = -1.0;
          for (const ir::Value& operand : instr->operands) {
            if (!operand.is_instr()) continue;
            const auto it = dist.find(operand.def);
            if (it != dist.end()) best = std::max(best, it->second);
          }
          if (best < 0.0) continue;  // not reachable from phi
          const double op_cost =
              lib.OpLatencyCycles(*instr) > 0
                  ? lib.OpLatencyCycles(*instr) * options.clock_ns
                  : lib.OpDelayNs(*instr);
          dist[instr] = best + op_cost;
        }
        const ir::Value latch = phi->operands.size() > latch_index
                                    ? phi->operands[latch_index]
                                    : ir::Value::None();
        if (latch.is_instr()) {
          const auto it = dist.find(latch.def);
          if (it != dist.end()) worst_ns = std::max(worst_ns, it->second);
        }
        const unsigned rec_ii = std::max(
            1u, static_cast<unsigned>(std::ceil(worst_ns / options.clock_ns)));
        ii = std::max(ii, rec_ii);
      }
      schedule.pipeline_ii = static_cast<int>(ii);
      schedule.pipeline_depth = bs->num_steps;
    }
  }
  return schedule;
}

std::uint64_t EstimateCycles(const HwRegion& region,
                             const RegionSchedule& schedule) {
  std::uint64_t cycles = 0;
  for (const auto& bs : schedule.blocks) {
    const std::uint64_t count = bs.block->exec_count;
    if (schedule.pipeline_ii > 0 && region.loop != nullptr &&
        bs.block == region.loop->header &&
        region.loop->blocks.size() == 1) {
      // Pipelined: entries pay the full depth once; steady-state
      // iterations issue every II cycles.
      const std::uint64_t entries = std::max<std::uint64_t>(
          1, region.loop->entry_count);
      const std::uint64_t iters = std::max<std::uint64_t>(count, entries);
      cycles += iters * static_cast<std::uint64_t>(schedule.pipeline_ii) +
                entries * static_cast<std::uint64_t>(
                              std::max(0, schedule.pipeline_depth -
                                              schedule.pipeline_ii));
    } else {
      cycles += count * static_cast<std::uint64_t>(bs.num_steps);
    }
  }
  return cycles;
}

double AchievableClockMhz(const RegionSchedule& schedule,
                          const ScheduleOptions& options) {
  const double period =
      std::max(schedule.critical_path_ns, options.clock_ns);
  return 1000.0 / period;
}

Status VerifySchedule(const HwRegion& region, const RegionSchedule& schedule,
                      const ResourceLibrary& lib,
                      const ScheduleOptions& options) {
  for (const auto& bs : schedule.blocks) {
    std::map<int, StepUsage> usage;
    for (const ir::Instr* instr : bs.block->instrs) {
      if (instr->op == Opcode::kPhi || instr->is_terminator()) continue;
      const auto it = bs.step_of.find(instr);
      if (it == bs.step_of.end()) {
        return Status::Error(ErrorKind::kUnsupported,
                             "unscheduled instruction in " + region.name);
      }
      const int step = it->second;
      const FuClass cls = ClassifyOp(*instr);
      if (cls == FuClass::kMemPort) ++usage[step].mem;
      if (cls == FuClass::kMul) ++usage[step].mul;
      if (cls == FuClass::kDiv) ++usage[step].div;
      // Dependence legality.
      for (const ir::Value& operand : instr->operands) {
        if (!operand.is_instr()) continue;
        const ir::Instr* producer = operand.def;
        if (producer->parent != bs.block ||
            producer->op == Opcode::kPhi) {
          continue;  // register/port input
        }
        const auto p = bs.step_of.find(producer);
        if (p == bs.step_of.end()) continue;
        const unsigned p_latency = lib.OpLatencyCycles(*producer);
        if (p_latency > 0) {
          if (step < p->second + static_cast<int>(p_latency)) {
            return Status::Error(ErrorKind::kUnsupported,
                                 "latency violation in " + region.name);
          }
        } else if (step < p->second) {
          return Status::Error(ErrorKind::kUnsupported,
                               "dependence violation in " + region.name);
        } else if (step == p->second &&
                   bs.chain_pos.at(producer) >= bs.chain_pos.at(instr)) {
          return Status::Error(ErrorKind::kUnsupported,
                               "chain order violation in " + region.name);
        }
      }
    }
    for (const auto& [step, u] : usage) {
      if (u.mem > options.mem_ports || u.mul > options.max_mults ||
          u.div > options.max_divs) {
        return Status::Error(ErrorKind::kResource,
                             "resource overuse in " + region.name);
      }
    }
  }
  return Status::Ok();
}

}  // namespace b2h::synth
