// Top-level behavioral synthesis entry point: region in, netlist-level
// results out (paper §3: "Our approach utilizes a behavioral synthesis
// tool that we implemented ourselves ... The output of the tool is register
// transfer-level VHDL.  We use Xilinx ISE to synthesize the VHDL to a
// netlist" — here the ISE step is replaced by the calibrated area/timing
// model, and an executable RTL model is produced for verification).
#pragma once

#include <string>

#include "decomp/alias.hpp"
#include "synth/area.hpp"
#include "synth/hw_region.hpp"
#include "synth/rtl_sim.hpp"
#include "synth/schedule.hpp"
#include "synth/vhdl.hpp"

namespace b2h::synth {

struct SynthOptions {
  ScheduleOptions schedule;
  ResourceLibrary library;
  bool emit_vhdl = true;
};

struct SynthesizedRegion {
  HwRegion region;
  RegionSchedule schedule;
  AreaReport area;
  double clock_mhz = 0.0;       ///< achievable clock (capped at target)
  std::uint64_t hw_cycles = 0;  ///< profile-weighted execution cycles
  std::string vhdl;

  [[nodiscard]] double hw_time_seconds() const {
    return clock_mhz <= 0.0
               ? 0.0
               : static_cast<double>(hw_cycles) / (clock_mhz * 1e6);
  }
};

/// Synthesize one region.  Fails when the region is not synthesizable
/// (calls that could not be inlined).
[[nodiscard]] Result<SynthesizedRegion> Synthesize(
    const HwRegion& region, const decomp::AliasAnalysis* alias,
    const SynthOptions& options = {});

}  // namespace b2h::synth
