#include "synth/rtl_sim.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "support/bits.hpp"

namespace b2h::synth {
namespace {

using ir::Opcode;

}  // namespace

RtlSimulator::RtlSimulator(const HwRegion& region,
                           const RegionSchedule& schedule,
                           std::span<const std::uint8_t> initial_data,
                           RtlOptions options)
    : region_(region), schedule_(schedule), options_(options) {
  data_mem_.assign(options_.data_size, 0);
  std::memcpy(data_mem_.data(), initial_data.data(),
              std::min<std::size_t>(initial_data.size(), data_mem_.size()));
  stack_mem_.assign(options_.stack_size, 0);
}

std::uint32_t RtlSimulator::PeekWord(std::uint32_t addr) const {
  Check(addr >= options_.data_base &&
            addr + 4 <= options_.data_base + data_mem_.size(),
        "RtlSimulator::PeekWord outside data");
  std::uint32_t value;
  std::memcpy(&value, data_mem_.data() + (addr - options_.data_base), 4);
  return value;
}

RtlResult RtlSimulator::Run(
    const std::map<const ir::Instr*, std::int32_t>& live_in_values,
    const std::map<unsigned, std::int32_t>& inputs) {
  RtlResult result;
  const auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };

  const auto mem_ptr = [this](std::uint32_t addr,
                              unsigned size) -> std::uint8_t* {
    if (addr >= options_.data_base &&
        addr + size <= options_.data_base + data_mem_.size()) {
      return data_mem_.data() + (addr - options_.data_base);
    }
    const std::uint32_t stack_base = options_.stack_top - options_.stack_size;
    if (addr >= stack_base && addr + size <= options_.stack_top) {
      return stack_mem_.data() + (addr - stack_base);
    }
    return nullptr;
  };

  // Register file: values produced by instructions.  Availability tracking
  // enforces schedule legality during execution.
  std::unordered_map<const ir::Instr*, std::int32_t> values;
  for (const auto& [instr, value] : live_in_values) values[instr] = value;

  const ir::Block* block = region_.blocks.front();
  const ir::Block* prev_block = nullptr;

  while (true) {
    if (result.fsm_cycles >= options_.max_cycles) {
      return fail("rtl: cycle budget exhausted");
    }
    const BlockSchedule* bs = schedule_.ForBlock(block);
    if (bs == nullptr) return fail("rtl: control left the region unexpectedly");

    // Phi update at block entry (parallel register load).
    if (!block->instrs.empty() &&
        block->instrs.front()->op == Opcode::kPhi) {
      std::vector<std::pair<const ir::Instr*, std::int32_t>> staged;
      for (const ir::Instr* phi : block->Phis()) {
        std::size_t index = SIZE_MAX;
        if (prev_block != nullptr) {
          for (std::size_t i = 0; i < block->preds.size(); ++i) {
            if (block->preds[i] == prev_block) {
              index = i;
              break;
            }
          }
        } else {
          // Region entry: use the (unique) predecessor outside the region.
          for (std::size_t i = 0; i < block->preds.size(); ++i) {
            if (!region_.Contains(block->preds[i])) {
              index = i;
              break;
            }
          }
        }
        if (index == SIZE_MAX || index >= phi->operands.size()) {
          return fail("rtl: unresolved phi input");
        }
        const ir::Value& operand = phi->operands[index];
        std::int32_t value = 0;
        if (operand.is_const()) {
          value = operand.imm;
        } else {
          const auto it = values.find(operand.def);
          if (it == values.end()) return fail("rtl: phi reads unknown value");
          value = it->second;
        }
        staged.emplace_back(phi, value);
      }
      for (const auto& [phi, value] : staged) values[phi] = value;
    }

    // Execute body ops in (step, chain position) order.
    std::vector<const ir::Instr*> order;
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == Opcode::kPhi || instr->is_terminator()) continue;
      order.push_back(instr);
    }
    std::sort(order.begin(), order.end(),
              [&](const ir::Instr* a, const ir::Instr* b) {
                const int sa = bs->step_of.at(a);
                const int sb = bs->step_of.at(b);
                if (sa != sb) return sa < sb;
                return bs->chain_pos.at(a) < bs->chain_pos.at(b);
              });

    const auto read = [&](const ir::Value& operand,
                          std::int32_t& out) -> bool {
      if (operand.is_const()) {
        out = operand.imm;
        return true;
      }
      const auto it = values.find(operand.def);
      if (it == values.end()) {
        // kInput ports of function regions.
        if (operand.def->op == Opcode::kInput) {
          const auto in = inputs.find(operand.def->input_index);
          out = in == inputs.end() ? 0 : in->second;
          return true;
        }
        if (operand.def->op == Opcode::kUndef) {
          out = 0;
          return true;
        }
        return false;
      }
      out = it->second;
      return true;
    };

    for (const ir::Instr* instr : order) {
      std::int32_t a = 0;
      std::int32_t b = 0;
      std::int32_t c = 0;
      if (!instr->operands.empty() && !read(instr->operands[0], a)) {
        return fail("rtl: operand not yet available (schedule bug)");
      }
      if (instr->operands.size() > 1 && !read(instr->operands[1], b)) {
        return fail("rtl: operand not yet available (schedule bug)");
      }
      if (instr->operands.size() > 2 && !read(instr->operands[2], c)) {
        return fail("rtl: operand not yet available (schedule bug)");
      }
      const auto ua = static_cast<std::uint32_t>(a);
      const auto ub = static_cast<std::uint32_t>(b);
      std::int32_t out = 0;
      switch (instr->op) {
        case Opcode::kInput: {
          const auto in = inputs.find(instr->input_index);
          out = in == inputs.end() ? 0 : in->second;
          break;
        }
        case Opcode::kConst: out = instr->imm; break;
        case Opcode::kUndef: out = 0; break;
        case Opcode::kAdd: out = static_cast<std::int32_t>(ua + ub); break;
        case Opcode::kSub: out = static_cast<std::int32_t>(ua - ub); break;
        case Opcode::kMul: out = static_cast<std::int32_t>(ua * ub); break;
        case Opcode::kMulHiS:
          out = static_cast<std::int32_t>(
              (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >>
              32);
          break;
        case Opcode::kMulHiU:
          out = static_cast<std::int32_t>(
              (static_cast<std::uint64_t>(ua) *
               static_cast<std::uint64_t>(ub)) >> 32);
          break;
        case Opcode::kDivS:
          out = b == 0 ? 0 : (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
          break;
        case Opcode::kDivU:
          out = b == 0 ? 0 : static_cast<std::int32_t>(ua / ub);
          break;
        case Opcode::kRemS:
          out = b == 0 ? a : (a == INT32_MIN && b == -1) ? 0 : a % b;
          break;
        case Opcode::kRemU:
          out = b == 0 ? a : static_cast<std::int32_t>(ua % ub);
          break;
        case Opcode::kAnd: out = static_cast<std::int32_t>(ua & ub); break;
        case Opcode::kOr:  out = static_cast<std::int32_t>(ua | ub); break;
        case Opcode::kXor: out = static_cast<std::int32_t>(ua ^ ub); break;
        case Opcode::kNor: out = static_cast<std::int32_t>(~(ua | ub)); break;
        case Opcode::kShl: out = static_cast<std::int32_t>(ua << (ub & 31u)); break;
        case Opcode::kShrL: out = static_cast<std::int32_t>(ua >> (ub & 31u)); break;
        case Opcode::kShrA: out = a >> (ub & 31u); break;
        case Opcode::kEq:  out = a == b; break;
        case Opcode::kNe:  out = a != b; break;
        case Opcode::kLtS: out = a < b; break;
        case Opcode::kLtU: out = ua < ub; break;
        case Opcode::kLeS: out = a <= b; break;
        case Opcode::kLeU: out = ua <= ub; break;
        case Opcode::kGtS: out = a > b; break;
        case Opcode::kGtU: out = ua > ub; break;
        case Opcode::kGeS: out = a >= b; break;
        case Opcode::kGeU: out = ua >= ub; break;
        case Opcode::kSelect: out = a != 0 ? b : c; break;
        case Opcode::kSExt: out = SignExtend(ua, instr->ext_from); break;
        case Opcode::kZExt:
          out = static_cast<std::int32_t>(ua & LowMask(instr->ext_from));
          break;
        case Opcode::kTrunc:
          out = static_cast<std::int32_t>(ua & LowMask(instr->width));
          break;
        case Opcode::kLoad: {
          const unsigned size = instr->mem_bytes;
          std::uint8_t* p = mem_ptr(ua, size);
          if (p == nullptr || (ua & (size - 1)) != 0) {
            return fail("rtl: bad load address");
          }
          std::uint32_t raw = 0;
          for (unsigned i = 0; i < size; ++i) {
            raw |= static_cast<std::uint32_t>(p[i]) << (8 * i);
          }
          out = size < 4 ? (instr->mem_signed
                                ? SignExtend(raw, size * 8)
                                : static_cast<std::int32_t>(raw))
                         : static_cast<std::int32_t>(raw);
          break;
        }
        case Opcode::kStore: {
          const unsigned size = instr->mem_bytes;
          std::uint8_t* p = mem_ptr(ua, size);
          if (p == nullptr || (ua & (size - 1)) != 0) {
            return fail("rtl: bad store address");
          }
          for (unsigned i = 0; i < size; ++i) {
            p[i] = static_cast<std::uint8_t>((ub >> (8 * i)) & 0xFFu);
          }
          break;
        }
        case Opcode::kPhi:
        case Opcode::kBr:
        case Opcode::kCondBr:
        case Opcode::kRet:
        case Opcode::kCall:
          return fail("rtl: unexpected op in datapath order");
      }
      if (instr->width > 0) {
        // Registers are sized to the claimed width.
        if (instr->width < 32) {
          const auto raw = static_cast<std::uint32_t>(out);
          out = instr->is_signed
                    ? SignExtend(raw, instr->width)
                    : static_cast<std::int32_t>(raw & LowMask(instr->width));
        }
        values[instr] = out;
      }
    }

    result.fsm_cycles += static_cast<std::uint64_t>(bs->num_steps);

    // Terminator: FSM transition.
    const ir::Instr* term = block->terminator();
    const ir::Block* next = nullptr;
    if (term->op == Opcode::kRet) {
      if (!term->operands.empty()) {
        std::int32_t value = 0;
        if (!read(term->operands[0], value)) {
          return fail("rtl: ret reads unknown value");
        }
        result.return_value = value;
      }
      break;
    }
    if (term->op == Opcode::kBr) {
      next = term->target0;
    } else if (term->op == Opcode::kCondBr) {
      std::int32_t cond = 0;
      if (!read(term->operands[0], cond)) {
        return fail("rtl: branch reads unknown value");
      }
      next = cond != 0 ? term->target0 : term->target1;
    } else {
      return fail("rtl: bad terminator");
    }
    if (!region_.Contains(next)) break;  // region exit -> done
    prev_block = block;
    block = next;
  }

  for (const ir::Instr* out : region_.live_outs) {
    const auto it = values.find(out);
    if (it != values.end()) result.live_out_values[out] = it->second;
  }
  result.ok = true;
  return result;
}

}  // namespace b2h::synth
