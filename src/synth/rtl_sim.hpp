// Executable RTL model of the synthesized FSM+datapath.
//
// The paper's flow hands RT-level VHDL to Xilinx ISE; ours additionally
// emits an executable model so the synthesized design can be *run* against
// the decompiled CDFG and the original binary (three-way co-simulation,
// DESIGN.md §5).  The simulator executes ops strictly in (step, chain
// position) order and refuses to read values the schedule has not produced
// yet, so scheduler bugs surface as simulation failures rather than as
// silently-correct software semantics.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "synth/schedule.hpp"

namespace b2h::synth {

struct RtlOptions {
  std::uint32_t data_base = 0x1000'0000u;
  std::uint32_t stack_top = 0x7FFF'F000u;
  std::uint32_t stack_size = 1u << 16;
  std::uint32_t data_size = 1u << 20;
  std::uint64_t max_cycles = 500'000'000;
};

struct RtlResult {
  bool ok = false;
  std::string error;
  std::int32_t return_value = 0;       ///< function regions: kRet value
  std::uint64_t fsm_cycles = 0;        ///< sequential FSM cycle count
  std::map<const ir::Instr*, std::int32_t> live_out_values;
};

class RtlSimulator {
 public:
  RtlSimulator(const HwRegion& region, const RegionSchedule& schedule,
               std::span<const std::uint8_t> initial_data,
               RtlOptions options = {});

  /// `live_in_values`: value for every live-in instruction (input ports);
  /// `inputs` additionally provides kInput registers for function regions
  /// (index = machine register number).
  [[nodiscard]] RtlResult Run(
      const std::map<const ir::Instr*, std::int32_t>& live_in_values = {},
      const std::map<unsigned, std::int32_t>& inputs = {});

  [[nodiscard]] std::uint32_t PeekWord(std::uint32_t addr) const;

 private:
  const HwRegion& region_;
  const RegionSchedule& schedule_;
  RtlOptions options_;
  std::vector<std::uint8_t> data_mem_;
  std::vector<std::uint8_t> stack_mem_;
};

}  // namespace b2h::synth
