// Wire protocol of the b2h-serve daemon.
//
// Transport: unix-domain stream socket + 4-byte little-endian
// length-prefixed frames (support/socket.hpp).  Payloads are JSON both
// ways; every request and response carries "schema": kWireSchemaVersion,
// and a mismatched request is rejected with a structured `bad-schema`
// error — the daemon never guesses at an unknown format.
//
// Request kinds:
//
//   {"schema":1,"kind":"ping"}
//   {"schema":1,"kind":"partition","benchmark":"crc","platform":
//       "mips200-xc2v1000","strategy":"annealing","objective":"speedup",
//       "opt_level":1,"seed":7,"deadline_ms":2000,"id":"req-42"}
//   {"schema":1,"kind":"explore","benchmarks":[...],"platforms":[...],
//       "strategies":[...],"objectives":[...],"seed":1}
//   {"schema":1,"kind":"stats"}
//   {"schema":1,"kind":"metrics"}
//   {"schema":1,"kind":"dump"}
//   {"schema":1,"kind":"shutdown"}
//
// Any request may carry "corr" (a client correlation id, [A-Za-z0-9._-],
// <= 64 bytes; the server assigns one when absent) — it is echoed in the
// response envelope and stamped into every span the request produces.
// Work requests may set "progress":true to receive progress frames
// ({"schema":1,"id":...,"corr":...,"progress":{...}}) before the final
// reply on the same connection.
//
// Responses:
//
//   success: {"schema":1,"id":"...","ok":true,"report":{...},"served":{...}}
//   error:   {"schema":1,"id":"...","ok":false,
//             "error":{"code":"...","message":"..."}}
//
// The "report" sub-object is DETERMINISTIC — a pure function of the request
// (ToolchainRun::Json() shape for `partition`, ExploreResult::Json() for
// `explore`) — while "served" carries volatile delivery metadata (whether
// the result was coalesced onto an in-flight computation).  Clients
// comparing serial vs. concurrent replays compare "report" bit-for-bit and
// ignore "served"; the loadgen and the hammer tests rely on that split.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace b2h::serve {

// Structured error codes (the closed set clients may dispatch on).
inline constexpr char kErrBadFrame[] = "bad-frame";        ///< framing layer
inline constexpr char kErrBadJson[] = "bad-json";          ///< unparseable
inline constexpr char kErrBadSchema[] = "bad-schema";      ///< version skew
inline constexpr char kErrBadRequest[] = "bad-request";    ///< shape/values
inline constexpr char kErrUnknownBenchmark[] = "unknown-benchmark";
inline constexpr char kErrUnknownPlatform[] = "unknown-platform";
inline constexpr char kErrUnknownStrategy[] = "unknown-strategy";
inline constexpr char kErrOverloaded[] = "overloaded";     ///< queue full
inline constexpr char kErrDeadline[] = "deadline";         ///< request timed out
inline constexpr char kErrShuttingDown[] = "shutting-down";
inline constexpr char kErrFlowFailed[] = "flow-failed";    ///< analysis failure
inline constexpr char kErrInternal[] = "internal";

enum class RequestKind {
  kPing,
  kPartition,
  kExplore,
  kStats,    ///< serving counters (StatsJson shape)
  kMetrics,  ///< full obs::Registry snapshot (kMetricsSchemaVersion shape)
  kDump,     ///< write a forensics bundle now; report = {"path":...}
  kShutdown
};

[[nodiscard]] std::string_view RequestKindName(RequestKind kind);

/// One decoded request.  `partition` uses the singular fields; `explore`
/// the plural ones.  Absent optional fields keep these defaults.
struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string id;        ///< opaque client tag, echoed in the response
  std::string corr;      ///< correlation id; "" = server assigns one
  bool progress = false; ///< stream progress frames before the final reply
  int deadline_ms = -1;  ///< < 0 = no deadline

  // partition
  std::string benchmark;
  std::string platform = "mips200-xc2v1000";
  std::string strategy = "paper-greedy";
  std::string objective = "speedup";
  int opt_level = 1;

  // explore
  std::vector<std::string> benchmarks;
  std::vector<std::string> platforms;
  std::vector<std::string> strategies;
  std::vector<std::string> objectives;

  // strategy knobs shared by both work kinds
  std::uint64_t seed = 1;
  unsigned annealing_iterations = 2000;
};

struct ParseError {
  std::string code;
  std::string message;
};

/// Decode + structurally validate one request payload (schema match, known
/// kind, required fields present and well-typed, objectives parseable).
/// Registry-level validation (benchmark/platform/strategy existence) stays
/// with the server, which owns the registries.  nullopt => `*error` holds
/// the structured code/message to send back.
[[nodiscard]] std::optional<Request> ParseRequest(std::string_view payload,
                                                  ParseError* error);

/// Canonical content key of the deterministic work a request names — the
/// scheduler coalesces concurrent requests with equal keys onto one
/// computation.  Includes every field that can change the report, nothing
/// volatile (no id, no deadline).
[[nodiscard]] std::string RequestKey(const Request& request);

/// True when `corr` is usable as a client-supplied correlation id:
/// non-empty, at most 64 bytes, charset [A-Za-z0-9._-].
[[nodiscard]] bool ValidCorrelationId(std::string_view corr);

// ---- response builders (all stamped with kWireSchemaVersion) -------------
// A non-empty `corr` adds a "corr" field to the envelope (additive: the
// wire schema stays 1; report/served stay adjacent for byte-slicing
// clients).

[[nodiscard]] std::string ErrorResponse(const std::string& id,
                                        std::string_view code,
                                        std::string_view message,
                                        std::string_view corr = {});

/// Success envelope around a pre-serialized deterministic `report` object
/// and a pre-serialized volatile `served` object (both must be complete
/// JSON values; pass "{}" when empty).
[[nodiscard]] std::string OkResponse(const std::string& id,
                                     std::string_view report_json,
                                     std::string_view served_json,
                                     std::string_view corr = {});

/// Progress frame for a streaming request: {"schema":1,"id":...,
/// "corr":...,"progress":<progress_json>}.  Distinguished from the final
/// reply by the presence of "progress" and the absence of "ok".
[[nodiscard]] std::string ProgressFrame(const std::string& id,
                                        std::string_view corr,
                                        std::string_view progress_json);

}  // namespace b2h::serve
