#include "serve/flight.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>

#include <unistd.h>

#include "obs/obs.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"
#include "support/schema.hpp"

#ifndef B2H_BUILD_TYPE
#define B2H_BUILD_TYPE "unknown"
#endif

namespace b2h::serve {

// ------------------------------------------------------------- RequestLog

void RequestLog::Begin(std::string_view corr, std::string_view key,
                       std::string_view kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Reusing a live corr overwrites the stale record instead of growing the
  // in-flight set forever.
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].corr == corr) {
      in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
      start_ns_.erase(start_ns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  RequestRecord record;
  record.corr = std::string(corr);
  record.key = std::string(key);
  record.kind = std::string(kind);
  record.status = "in-flight";
  record.seq = next_seq_++;
  in_flight_.push_back(std::move(record));
  start_ns_.push_back(obs::Stopwatch::Now());
}

void RequestLog::Finish(std::string_view corr, std::string_view status,
                        double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].corr != corr) continue;
    RequestRecord record = std::move(in_flight_[i]);
    in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
    start_ns_.erase(start_ns_.begin() + static_cast<std::ptrdiff_t>(i));
    record.status = std::string(status);
    record.latency_ms = latency_ms;
    if (recent_.size() == kRecent) recent_.erase(recent_.begin());
    recent_.push_back(std::move(record));
    return;
  }
}

std::optional<std::string> RequestLog::KeyForCorr(
    std::string_view corr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RequestRecord& record : in_flight_) {
    if (record.corr == corr) return record.key;
  }
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->corr == corr) return it->key;
  }
  return std::nullopt;
}

std::vector<RequestRecord> RequestLog::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RequestRecord> out = in_flight_;
  const std::uint64_t now = obs::Stopwatch::Now();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].latency_ms =
        static_cast<double>(now - start_ns_[i]) / 1e6;
  }
  return out;
}

std::vector<RequestRecord> RequestLog::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recent_;
}

// ----------------------------------------------------------- ProgressBoard

void ProgressBoard::Update(std::string_view key, const ProgressState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      entry.state = state;
      entry.seq = next_seq_++;
      return;
    }
  }
  if (entries_.size() == kMaxEntries) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].seq < entries_[oldest].seq) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(oldest));
  }
  entries_.push_back(Entry{std::string(key), state, next_seq_++});
}

std::optional<ProgressState> ProgressBoard::Get(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.key == key) return entry.state;
  }
  return std::nullopt;
}

// --------------------------------------------------------------- Forensics

namespace {

void AppendRecord(std::ostringstream& out, const RequestRecord& record) {
  char latency[40];
  std::snprintf(latency, sizeof latency, "%.9g", record.latency_ms);
  out << "{\"corr\":\"" << support::JsonEscape(record.corr)
      << "\",\"key\":\"" << support::JsonEscape(record.key)
      << "\",\"kind\":\"" << support::JsonEscape(record.kind)
      << "\",\"status\":\"" << support::JsonEscape(record.status)
      << "\",\"latency_ms\":" << latency << ",\"seq\":" << record.seq << "}";
}

}  // namespace

std::string WriteForensicsDump(const Forensics& forensics,
                               std::string_view reason) {
  if (forensics.dump_dir.empty()) return "";

  std::ostringstream out;
  out << "{\"schema\":1,\"reason\":\"" << support::JsonEscape(
             std::string(reason))
      << "\",\"pid\":" << ::getpid()
      << ",\"build_type\":\"" << B2H_BUILD_TYPE << "\""
      << ",\"wire_schema\":" << kWireSchemaVersion
      << ",\"report_schema\":" << kReportSchemaVersion
      << ",\"metrics_schema\":" << obs::kMetricsSchemaVersion;

  out << ",\"in_flight\":[";
  if (forensics.requests != nullptr) {
    bool first = true;
    for (const RequestRecord& record : forensics.requests->InFlight()) {
      if (!first) out << ",";
      first = false;
      AppendRecord(out, record);
    }
  }
  out << "],\"recent\":[";
  if (forensics.requests != nullptr) {
    bool first = true;
    for (const RequestRecord& record : forensics.requests->Recent()) {
      if (!first) out << ",";
      first = false;
      AppendRecord(out, record);
    }
  }
  out << "]";

  // Both sections are raw JSON objects from their own writers, embedded
  // verbatim so the bundle parses as one document.
  out << ",\"metrics\":" << obs::Registry::Global().SnapshotJson();
  out << ",\"trace\":" << obs::Tracer::Global().FlightChromeTraceJson();
  out << "}\n";

  static std::atomic<std::uint64_t> next_dump{1};
  const std::uint64_t seq =
      next_dump.fetch_add(1, std::memory_order_relaxed);
  const std::string path = forensics.dump_dir + "/b2h-forensics-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(seq) + ".json";
  if (!support::AtomicWriteFile(path, out.str())) {
    std::fprintf(stderr, "serve: failed to write forensics dump '%s'\n",
                 path.c_str());
    return "";
  }
  return path;
}

namespace {

// Crash-handler state: a plain pointer set once at startup (the Forensics
// lives in the Server, which outlives every worker), plus a once-flag so a
// fault inside the dump writer cannot recurse into a second dump.
std::atomic<const Forensics*> g_forensics{nullptr};
std::atomic<bool> g_dumped{false};
std::terminate_handler g_prior_terminate = nullptr;

void DumpOnce(const char* reason) {
  const Forensics* forensics = g_forensics.load(std::memory_order_acquire);
  if (forensics == nullptr) return;
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return;
  // Deliberately not async-signal-safe (allocates, takes locks, does
  // buffered I/O): a black-box dump that usually works beats none at all,
  // and SA_RESETHAND below guarantees a fault inside the handler still
  // terminates the process with the original signal's disposition.
  const std::string path = WriteForensicsDump(*forensics, reason);
  if (!path.empty()) {
    std::fprintf(stderr, "serve: wrote forensics dump: %s\n", path.c_str());
  }
}

void OnFatalSignal(int signal_number) {
  const char* reason = "fatal-signal";
  switch (signal_number) {
    case SIGSEGV: reason = "SIGSEGV"; break;
    case SIGABRT: reason = "SIGABRT"; break;
    case SIGBUS: reason = "SIGBUS"; break;
    case SIGFPE: reason = "SIGFPE"; break;
    default: break;
  }
  DumpOnce(reason);
  // SA_RESETHAND restored the default disposition before this handler ran:
  // re-raising terminates the process with the original signal so waitpid
  // observers (and the shell) still see the true cause.
  ::raise(signal_number);
}

void OnTerminate() {
  DumpOnce("std::terminate");
  if (g_prior_terminate != nullptr) g_prior_terminate();
  std::abort();
}

}  // namespace

void InstallCrashHandlers(const Forensics* forensics) {
  g_forensics.store(forensics, std::memory_order_release);
  if (forensics == nullptr) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = OnFatalSignal;
  sigemptyset(&action.sa_mask);
  // One shot: the disposition resets to default before the handler runs,
  // so the re-raise (or a crash inside the handler) terminates for real.
  action.sa_flags = SA_RESETHAND;
  for (const int signal_number : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(signal_number, &action, nullptr);
  }
  g_prior_terminate = std::set_terminate(OnTerminate);
}

}  // namespace b2h::serve
