#include "serve/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "support/json_parse.hpp"

namespace b2h::serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& socket_path) {
  std::string error;
  const int fd = support::ConnectUnix(socket_path, &error);
  if (fd < 0) {
    return Status::Error(ErrorKind::kResource, "b2h-serve client: " + error);
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Status Client::Call(std::string_view request, std::string* response,
                    int timeout_ms) {
  if (const Status sent = Send(request); !sent.ok()) return sent;
  return Receive(response, timeout_ms);
}

Status Client::CallStreaming(
    std::string_view request, std::string* response,
    const std::function<void(std::string_view)>& on_progress, int timeout_ms) {
  if (const Status sent = Send(request); !sent.ok()) return sent;
  while (true) {
    if (const Status received = Receive(response, timeout_ms);
        !received.ok()) {
      return received;
    }
    // A progress frame has "progress" and no "ok"; anything else —
    // including unparseable payloads — is treated as the final response so
    // a non-streaming daemon still satisfies this call.
    const std::optional<support::JsonValue> parsed =
        support::JsonValue::Parse(*response);
    const bool is_progress = parsed.has_value() && parsed->is_object() &&
                             parsed->Find("progress") != nullptr &&
                             parsed->Find("ok") == nullptr;
    if (!is_progress) return Status::Ok();
    if (on_progress) on_progress(*response);
  }
}

Status Client::Send(std::string_view request) {
  if (fd_ < 0) {
    return Status::Error(ErrorKind::kResource, "client is not connected");
  }
  if (!support::WriteFrame(fd_, request, max_frame_bytes_)) {
    return Status::Error(ErrorKind::kResource,
                         "failed to send request frame");
  }
  return Status::Ok();
}

Status Client::Receive(std::string* response, int timeout_ms) {
  if (fd_ < 0) {
    return Status::Error(ErrorKind::kResource, "client is not connected");
  }
  const support::FrameStatus status =
      support::ReadFrame(fd_, response, max_frame_bytes_, timeout_ms);
  if (status == support::FrameStatus::kOk) return Status::Ok();
  return Status::Error(ErrorKind::kResource,
                       std::string("response read failed: ") +
                           support::ToString(status));
}

bool Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace b2h::serve
