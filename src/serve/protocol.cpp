#include "serve/protocol.hpp"

#include <sstream>

#include "partition/strategy.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"

namespace b2h::serve {

namespace {

using support::JsonValue;

std::optional<RequestKind> ParseKind(std::string_view name) {
  if (name == "ping") return RequestKind::kPing;
  if (name == "partition") return RequestKind::kPartition;
  if (name == "explore") return RequestKind::kExplore;
  if (name == "stats") return RequestKind::kStats;
  if (name == "metrics") return RequestKind::kMetrics;
  if (name == "dump") return RequestKind::kDump;
  if (name == "shutdown") return RequestKind::kShutdown;
  return std::nullopt;
}

std::optional<Request> Fail(ParseError* error, std::string code,
                            std::string message) {
  if (error != nullptr) {
    error->code = std::move(code);
    error->message = std::move(message);
  }
  return std::nullopt;
}

/// Non-negative integral member with a default; false on a present but
/// non-numeric / negative / fractional value.
bool GetCount(const JsonValue& object, std::string_view key,
              std::uint64_t fallback, std::uint64_t* out) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    *out = fallback;
    return true;
  }
  if (!member->is_number()) return false;
  const double value = member->number();
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint64_t>(value))) {
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
    case RequestKind::kPartition: return "partition";
    case RequestKind::kExplore: return "explore";
    case RequestKind::kStats: return "stats";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kDump: return "dump";
    case RequestKind::kShutdown: return "shutdown";
  }
  return "ping";
}

std::optional<Request> ParseRequest(std::string_view payload,
                                    ParseError* error) {
  const std::optional<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.has_value()) {
    return Fail(error, kErrBadJson, "request payload is not valid JSON");
  }
  if (!parsed->is_object()) {
    return Fail(error, kErrBadRequest, "request must be a JSON object");
  }
  const JsonValue& object = *parsed;

  const JsonValue* schema = object.Find("schema");
  if (schema == nullptr || !schema->is_number()) {
    return Fail(error, kErrBadSchema,
                "request carries no numeric \"schema\" field");
  }
  if (static_cast<int>(schema->number()) != kWireSchemaVersion) {
    return Fail(error, kErrBadSchema,
                "unsupported wire schema " +
                    std::to_string(static_cast<int>(schema->number())) +
                    " (server speaks " +
                    std::to_string(kWireSchemaVersion) + ")");
  }

  const std::string kind_name = object.GetString("kind");
  const std::optional<RequestKind> kind = ParseKind(kind_name);
  if (!kind.has_value()) {
    return Fail(error, kErrBadRequest,
                "unknown request kind \"" + kind_name + "\"");
  }

  Request request;
  request.kind = *kind;
  request.id = object.GetString("id");
  request.corr = object.GetString("corr");
  if (!request.corr.empty() && !ValidCorrelationId(request.corr)) {
    return Fail(error, kErrBadRequest,
                "\"corr\" must be 1-64 bytes of [A-Za-z0-9._-]");
  }
  const JsonValue* progress = object.Find("progress");
  if (progress != nullptr) {
    if (!progress->is_bool()) {
      return Fail(error, kErrBadRequest, "\"progress\" must be a boolean");
    }
    request.progress = progress->bool_value();
  }

  const JsonValue* deadline = object.Find("deadline_ms");
  if (deadline != nullptr) {
    if (!deadline->is_number() || deadline->number() < 0.0) {
      return Fail(error, kErrBadRequest,
                  "\"deadline_ms\" must be a non-negative number");
    }
    request.deadline_ms = static_cast<int>(deadline->number());
  }

  std::uint64_t seed = 1;
  std::uint64_t iterations = 2000;
  std::uint64_t opt_level = 1;
  if (!GetCount(object, "seed", 1, &seed) ||
      !GetCount(object, "annealing_iterations", 2000, &iterations) ||
      !GetCount(object, "opt_level", 1, &opt_level) || opt_level > 3) {
    return Fail(error, kErrBadRequest,
                "\"seed\", \"annealing_iterations\", and \"opt_level\" must "
                "be non-negative integers (opt_level <= 3)");
  }
  request.seed = seed;
  request.annealing_iterations = static_cast<unsigned>(iterations);
  request.opt_level = static_cast<int>(opt_level);

  switch (request.kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kDump:
    case RequestKind::kShutdown:
      return request;
    case RequestKind::kPartition: {
      request.benchmark = object.GetString("benchmark");
      if (request.benchmark.empty()) {
        return Fail(error, kErrBadRequest,
                    "partition request needs a \"benchmark\" name");
      }
      request.platform = object.GetString("platform", request.platform);
      request.strategy = object.GetString("strategy", request.strategy);
      request.objective = object.GetString("objective", request.objective);
      if (!partition::ParseObjective(request.objective).has_value()) {
        return Fail(error, kErrBadRequest,
                    "unknown objective \"" + request.objective + "\"");
      }
      return request;
    }
    case RequestKind::kExplore: {
      request.benchmarks = object.GetStringArray("benchmarks");
      if (request.benchmarks.empty()) {
        return Fail(error, kErrBadRequest,
                    "explore request needs a non-empty \"benchmarks\" array");
      }
      request.platforms = object.GetStringArray("platforms");
      request.strategies = object.GetStringArray("strategies");
      request.objectives = object.GetStringArray("objectives");
      if (request.platforms.empty()) {
        request.platforms = {"mips40", "mips200-xc2v1000", "mips400"};
      }
      if (request.strategies.empty()) request.strategies = {"paper-greedy"};
      if (request.objectives.empty()) request.objectives = {"speedup"};
      for (const std::string& objective : request.objectives) {
        if (!partition::ParseObjective(objective).has_value()) {
          return Fail(error, kErrBadRequest,
                      "unknown objective \"" + objective + "\"");
        }
      }
      return request;
    }
  }
  return Fail(error, kErrInternal, "unreachable request kind");
}

std::string RequestKey(const Request& request) {
  // '\x1f' separators cannot appear in registry/benchmark names, so the
  // concatenation is injective; lists keep their order (a reordered explore
  // grid is a different report, hence a different key).
  std::ostringstream out;
  out << RequestKindName(request.kind);
  const auto field = [&](std::string_view value) { out << '\x1f' << value; };
  const auto list = [&](const std::vector<std::string>& values) {
    out << '\x1f' << values.size();
    for (const std::string& value : values) field(value);
  };
  if (request.kind == RequestKind::kPartition) {
    field(request.benchmark);
    field(request.platform);
    field(request.strategy);
    field(request.objective);
  } else {
    list(request.benchmarks);
    list(request.platforms);
    list(request.strategies);
    list(request.objectives);
  }
  out << '\x1f' << request.opt_level << '\x1f' << request.seed << '\x1f'
      << request.annealing_iterations;
  return out.str();
}

bool ValidCorrelationId(std::string_view corr) {
  if (corr.empty() || corr.size() > 64) return false;
  for (const char c : corr) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

namespace {

void AppendCorr(std::ostringstream& out, std::string_view corr) {
  if (!corr.empty()) {
    out << ",\"corr\":\"" << support::JsonEscape(std::string(corr)) << "\"";
  }
}

}  // namespace

std::string ErrorResponse(const std::string& id, std::string_view code,
                          std::string_view message, std::string_view corr) {
  std::ostringstream out;
  out << "{\"schema\":" << kWireSchemaVersion << ",\"id\":\""
      << support::JsonEscape(id) << "\"";
  AppendCorr(out, corr);
  out << ",\"ok\":false,\"error\":{\"code\":\""
      << support::JsonEscape(std::string(code)) << "\",\"message\":\""
      << support::JsonEscape(std::string(message)) << "\"}}";
  return out.str();
}

std::string OkResponse(const std::string& id, std::string_view report_json,
                       std::string_view served_json, std::string_view corr) {
  std::ostringstream out;
  out << "{\"schema\":" << kWireSchemaVersion << ",\"id\":\""
      << support::JsonEscape(id) << "\"";
  AppendCorr(out, corr);
  out << ",\"ok\":true,\"report\":"
      << (report_json.empty() ? "{}" : report_json) << ",\"served\":"
      << (served_json.empty() ? "{}" : served_json) << "}";
  return out.str();
}

std::string ProgressFrame(const std::string& id, std::string_view corr,
                          std::string_view progress_json) {
  std::ostringstream out;
  out << "{\"schema\":" << kWireSchemaVersion << ",\"id\":\""
      << support::JsonEscape(id) << "\"";
  AppendCorr(out, corr);
  out << ",\"progress\":" << (progress_json.empty() ? "{}" : progress_json)
      << "}";
  return out.str();
}

}  // namespace b2h::serve
