// The b2h-serve daemon core: partitioning-as-a-service over a unix socket.
//
// A design-space exploration service keeps answering the same questions —
// the same benchmarks against overlapping platform/strategy grids — so the
// economics are those of a WARM server: one process owns one Toolchain
// with one two-tier ArtifactCache (and its CandidateSetPool), and every
// connection shares them.  A request that names already-computed work is
// answered from cache with zero simulations/decompilations/partitions; the
// loadgen bench and the CI serve smoke assert exactly that.
//
// Concurrency model:
//
//   accept thread  — owns the listening socket, spawns one thread per
//                    connection (the suite's request shapes are few and
//                    long-lived; a thread per connection is the simple
//                    correct choice at this scale).
//   connection threads — frame/parse/validate requests, answer cheap kinds
//                    (ping/stats/shutdown) inline, and block on the
//                    Scheduler for heavy kinds (partition/explore).
//   scheduler workers — run the toolchain work, bounded and coalesced
//                    (serve/scheduler.hpp).
//
// Robustness contract (regression-tested): malformed JSON, an unknown
// kind, a schema mismatch, or an oversized/truncated frame yields a
// structured error on THAT connection only — other connections keep being
// served, and the daemon never aborts on request input.  Oversized frames
// additionally close the connection (the stream is no longer in sync).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "support/error.hpp"
#include "support/http.hpp"
#include "support/socket.hpp"
#include "toolchain/toolchain.hpp"

namespace b2h::serve {

class Server {
 public:
  struct Options {
    std::string socket_path;
    /// Disk tier for the shared artifact cache ("" = memory-only; the
    /// B2H_CACHE_DIR environment variable still applies to the toolchain
    /// when set).
    std::string cache_dir;
    unsigned workers = 2;        ///< scheduler worker threads
    std::size_t max_queue = 64;  ///< bounded admission queue
    unsigned toolchain_threads = 1;  ///< intra-request fan-out
    std::uint32_t max_frame_bytes = support::kDefaultMaxFrameBytes;
    /// Loopback HTTP introspection plane: <0 = disabled, 0 = pick an
    /// ephemeral port (read it back via http_port()), >0 = bind that port.
    int http_port = -1;
    /// Directory for forensics dump bundles ("" = crash handlers and the
    /// `dump` request kind are disabled).
    std::string dump_dir;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread.  On error the server is
  /// unusable (nothing to clean up beyond the destructor).
  [[nodiscard]] Status Start();

  /// Block until shutdown is requested (shutdown request, RequestShutdown,
  /// or a signal handler calling it), then tear everything down: stop
  /// accepting, join connections, drain the scheduler, close and unlink
  /// the socket.
  void Wait();

  /// Async-signal-safe shutdown trigger (sets a flag; Wait() acts on it).
  void RequestShutdown() noexcept { stopping_.store(true); }
  [[nodiscard]] bool stopping() const noexcept { return stopping_.load(); }

  /// Volatile server statistics as a JSON object (the `stats` response
  /// body): request/error counters, scheduler stats, cumulative toolchain
  /// work counters, artifact-cache and candidate-pool stats.
  [[nodiscard]] std::string StatsJson() const;

  [[nodiscard]] const Options& options() const { return options_; }

  /// Bound HTTP port after Start() (0 when the HTTP plane is disabled).
  /// With Options::http_port == 0 this is the ephemeral port the kernel
  /// picked.
  [[nodiscard]] int http_port() const noexcept { return http_port_; }

 private:
  /// Optional per-connection sink for mid-request frames (progress
  /// streaming).  Returns false when the connection is gone; null when the
  /// transport cannot stream (HTTP).
  using FrameSink = std::function<bool(std::string_view)>;

  void AcceptLoop();
  void ServeConnection(int fd);
  void HttpAcceptLoop();
  void ServeHttpConnection(int fd);
  void HandleHttp(int fd, const support::HttpRequest& request);
  [[nodiscard]] std::string HandleRequest(std::string_view payload,
                                          const FrameSink* frame_sink);
  [[nodiscard]] std::string HandleWork(const Request& request,
                                       const std::string& corr,
                                       const FrameSink* frame_sink);
  [[nodiscard]] JobResult DoPartition(Request request, std::string key,
                                      std::string corr);
  [[nodiscard]] JobResult DoExplore(Request request, std::string key,
                                    std::string corr);

  /// Compile-once benchmark binary cache (keyed bench + opt level).
  [[nodiscard]] Result<std::shared_ptr<const mips::SoftBinary>> ObtainBinary(
      const std::string& benchmark, int opt_level);

  /// Registry-existence validation shared by partition and explore
  /// requests; empty code on success.
  [[nodiscard]] ParseError ValidateNames(const Request& request) const;

  void AccumulateWork(const explore::ExploreResult& result);

  const Options options_;
  Toolchain toolchain_;
  Scheduler scheduler_;

  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  int http_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread http_accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;

  // Flight-recorder forensics: recent-request log, per-key progress board,
  // and the crash-dump configuration the signal handlers read.
  RequestLog request_log_;
  ProgressBoard progress_;
  Forensics forensics_;
  std::atomic<std::uint64_t> next_corr_{1};  ///< server-assigned corr ids

  std::mutex binaries_mutex_;
  std::map<std::string, std::shared_ptr<const mips::SoftBinary>> binaries_;

  // Request/traffic metrics, backed by the process-wide obs::Registry so
  // the same instruments feed StatsJson(), the `metrics` request kind, and
  // --trace-out sessions.  References resolved once in the constructor
  // (registry instruments live for the process lifetime).
  obs::Counter& requests_;
  obs::Counter& protocol_errors_;
  obs::Counter& connections_served_;
  obs::Counter& http_requests_;
  // Cumulative toolchain work this process actually performed.
  obs::Counter& simulations_run_;
  obs::Counter& decompilations_run_;
  obs::Counter& partitions_run_;
  // Live connection count and per-endpoint request latency (queue + coalesce
  // + execute wall time as seen by the connection thread).
  obs::Gauge& connections_open_;
  obs::Histogram& partition_latency_ms_;
  obs::Histogram& explore_latency_ms_;
};

}  // namespace b2h::serve
