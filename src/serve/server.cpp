#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "partition/strategy.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/json.hpp"
#include "support/schema.hpp"

namespace b2h::serve {

namespace {

using support::JsonEscape;

/// How often blocked loops re-check the stop flag (accept poll, idle
/// connection reads).  Bounds shutdown latency without busy-waiting.
constexpr int kStopPollMs = 100;

/// ToolchainRun::Json()-shaped report for one explore point — same fields,
/// same order, same %.9g formatting, so a served `partition` report is
/// bit-identical to what a local Toolchain::RunOn + Json() produces for
/// the same request (asserted in test_serve).
std::string PartitionReportJson(const explore::ExplorePoint& point) {
  std::ostringstream out;
  char number[64];
  out << "{\"schema\":" << kReportSchemaVersion << ",\"binary\":\""
      << JsonEscape(point.binary_name) << "\",\"platform\":\""
      << JsonEscape(point.platform_name) << "\"";
  std::snprintf(number, sizeof number, "%.9g", point.speedup);
  out << ",\"speedup\":" << number;
  std::snprintf(number, sizeof number, "%.9g", point.energy_savings);
  out << ",\"energy_savings\":" << number;
  std::snprintf(number, sizeof number, "%.9g", point.area_gates);
  out << ",\"area_gates\":" << number;
  out << ",\"hw_regions\":[";
  for (std::size_t i = 0; i < point.hw_names.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(point.hw_names[i]) << "\"";
  }
  out << "],\"rejected\":[";
  for (std::size_t i = 0; i < point.rejected.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(point.rejected[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      scheduler_(Scheduler::Options{options_.workers, options_.max_queue}),
      requests_(obs::Registry::Global().counter("serve.requests")),
      protocol_errors_(obs::Registry::Global().counter(
          "serve.protocol_errors")),
      connections_served_(obs::Registry::Global().counter(
          "serve.connections")),
      simulations_run_(obs::Registry::Global().counter(
          "serve.simulations_run")),
      decompilations_run_(obs::Registry::Global().counter(
          "serve.decompilations_run")),
      partitions_run_(obs::Registry::Global().counter("serve.partitions_run")),
      connections_open_(obs::Registry::Global().gauge(
          "serve.connections_open")),
      partition_latency_ms_(obs::Registry::Global().histogram(
          "serve.latency_ms.partition")),
      explore_latency_ms_(obs::Registry::Global().histogram(
          "serve.latency_ms.explore")) {
  // A fresh daemon starts its serve.* instruments at zero — the behavior of
  // the per-instance counters this registry family replaced.  The registry
  // is process-global, but a process runs one Server (b2h-serve) and the
  // tests construct daemons sequentially, so nothing live is zeroed.
  requests_.Reset();
  protocol_errors_.Reset();
  connections_served_.Reset();
  simulations_run_.Reset();
  decompilations_run_.Reset();
  partitions_run_.Reset();
  connections_open_.Reset();
  partition_latency_ms_.Reset();
  explore_latency_ms_.Reset();
  toolchain_.WithThreads(options_.toolchain_threads);
  if (!options_.cache_dir.empty()) {
    toolchain_.WithCacheDir(options_.cache_dir);
  }
}

Server::~Server() {
  RequestShutdown();
  if (accept_thread_.joinable()) Wait();
}

Status Server::Start() {
  std::string error;
  listen_fd_ = support::ListenUnix(options_.socket_path, 64, &error);
  if (listen_fd_ < 0) {
    return Status::Error(ErrorKind::kResource, "b2h-serve: " + error);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Wait() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kStopPollMs / 2));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain order matters: failing queued jobs / finishing running ones
  // unblocks any connection thread parked in Scheduler::Run, after which
  // every connection loop observes the stop flag and exits.
  scheduler_.Stop();
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The daemon owns its socket path; leaving the file behind would make a
  // later `connect` hang instead of failing fast.
  ::unlink(options_.socket_path.c_str());
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, kStopPollMs);
    if (polled <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  connections_served_.Add(1);
  connections_open_.Add(1);
  std::string payload;
  while (!stopping_.load()) {
    const support::FrameStatus status = support::ReadFrame(
        fd, &payload, options_.max_frame_bytes, kStopPollMs);
    if (status == support::FrameStatus::kTimeout) continue;  // idle tick
    if (status == support::FrameStatus::kClosed) break;
    if (status == support::FrameStatus::kOversized) {
      // The prefix was consumed but the payload not; the stream is out of
      // sync, so answer structurally and close THIS connection only.
      protocol_errors_.Add(1);
      (void)support::WriteFrame(
          fd,
          ErrorResponse("", kErrBadFrame,
                        "frame exceeds the " +
                            std::to_string(options_.max_frame_bytes) +
                            "-byte cap"),
          options_.max_frame_bytes);
      break;
    }
    if (status != support::FrameStatus::kOk) break;  // truncated / error

    const std::string response = HandleRequest(payload);
    if (!support::WriteFrame(fd, response, options_.max_frame_bytes)) break;
  }
  connections_open_.Add(-1);
  ::close(fd);
}

std::string Server::HandleRequest(std::string_view payload) {
  requests_.Add(1);
  obs::ScopedSpan span("serve.request", "serve");
  ParseError error;
  const std::optional<Request> request = ParseRequest(payload, &error);
  if (!request.has_value()) {
    protocol_errors_.Add(1);
    span.Arg("kind", "invalid");
    return ErrorResponse("", error.code, error.message);
  }
  span.Arg("kind", RequestKindName(request->kind));
  switch (request->kind) {
    case RequestKind::kPing:
      return OkResponse(request->id, "{\"pong\":true}", "{}");
    case RequestKind::kStats:
      // Stats are volatile by definition, so they ride in "served", never
      // in the deterministic "report" slot.
      return OkResponse(request->id, "{}", StatsJson());
    case RequestKind::kMetrics:
      // Full registry snapshot, schema-stamped by SnapshotJson itself
      // (kMetricsSchemaVersion).  Volatile like stats: "served" slot only.
      return OkResponse(request->id, "{}",
                        obs::Registry::Global().SnapshotJson());
    case RequestKind::kShutdown:
      RequestShutdown();
      return OkResponse(request->id, "{}", "{\"stopping\":true}");
    case RequestKind::kPartition:
    case RequestKind::kExplore:
      return HandleWork(*request);
  }
  return ErrorResponse(request->id, kErrInternal, "unreachable request kind");
}

std::string Server::HandleWork(const Request& request) {
  const ParseError invalid = ValidateNames(request);
  if (!invalid.code.empty()) {
    protocol_errors_.Add(1);
    return ErrorResponse(request.id, invalid.code, invalid.message);
  }

  const std::string key = RequestKey(request);
  Request job_request = request;  // owned copy; outlives this frame
  obs::ScopedSpan span("serve.dispatch", "serve");
  span.Arg("key", key);
  const obs::Stopwatch latency;  // queue + coalesce + execute, as the
                                 // connection thread sees it
  const Scheduler::Outcome outcome = scheduler_.Run(
      key,
      [this, job_request = std::move(job_request)]() -> JobResult {
        return job_request.kind == RequestKind::kPartition
                   ? DoPartition(job_request)
                   : DoExplore(job_request);
      },
      request.deadline_ms);
  (request.kind == RequestKind::kPartition ? partition_latency_ms_
                                           : explore_latency_ms_)
      .Observe(latency.Millis());
  span.Arg("coalesced", static_cast<int>(outcome.coalesced));

  switch (outcome.code) {
    case Scheduler::OutcomeCode::kOverloaded:
      return ErrorResponse(request.id, kErrOverloaded,
                           "admission queue is full; retry later");
    case Scheduler::OutcomeCode::kDeadline:
      return ErrorResponse(request.id, kErrDeadline,
                           "deadline of " +
                               std::to_string(request.deadline_ms) +
                               " ms expired (the computation continues and "
                               "will be served warm)");
    case Scheduler::OutcomeCode::kShuttingDown:
      return ErrorResponse(request.id, kErrShuttingDown,
                           "server is shutting down");
    case Scheduler::OutcomeCode::kDone:
      break;
  }
  const JobResult& result = *outcome.result;
  if (!result.ok) {
    return ErrorResponse(request.id, result.error_code, result.error_message);
  }
  return OkResponse(request.id, result.report,
                    outcome.coalesced ? "{\"coalesced\":true}"
                                      : "{\"coalesced\":false}");
}

JobResult Server::DoPartition(Request request) {
  obs::ScopedSpan span("serve.partition", "serve");
  span.Arg("benchmark", request.benchmark)
      .Arg("platform", request.platform)
      .Arg("strategy", request.strategy);
  auto binary = ObtainBinary(request.benchmark, request.opt_level);
  if (!binary.ok()) {
    return {false, kErrInternal, binary.status().message(), ""};
  }
  explore::ExploreSpec spec;
  spec.binaries = {{request.benchmark, binary.value()}};
  spec.platforms = {request.platform};
  spec.strategies = {request.strategy};
  spec.objectives = {*partition::ParseObjective(request.objective)};
  spec.strategy_options.seed = request.seed;
  spec.strategy_options.annealing_iterations = request.annealing_iterations;

  // Through Explore — not Run — so the request hits the shared artifact
  // cache and candidate pool; a repeat of this request does zero work.
  const explore::ExploreResult result = toolchain_.Explore(spec);
  AccumulateWork(result);
  const explore::ExplorePoint& point = result.At(0, 0, 0, 0);
  if (!point.status.ok()) {
    return {false, kErrFlowFailed, point.status.message(), ""};
  }
  return {true, "", "", PartitionReportJson(point)};
}

JobResult Server::DoExplore(Request request) {
  obs::ScopedSpan span("serve.explore", "serve");
  span.Arg("benchmarks", static_cast<std::uint64_t>(request.benchmarks.size()))
      .Arg("platforms", static_cast<std::uint64_t>(request.platforms.size()))
      .Arg("strategies",
           static_cast<std::uint64_t>(request.strategies.size()));
  explore::ExploreSpec spec;
  spec.binaries.reserve(request.benchmarks.size());
  for (const std::string& benchmark : request.benchmarks) {
    auto binary = ObtainBinary(benchmark, request.opt_level);
    if (!binary.ok()) {
      return {false, kErrInternal, binary.status().message(), ""};
    }
    spec.binaries.push_back({benchmark, binary.value()});
  }
  spec.platforms = request.platforms;
  spec.strategies = request.strategies;
  spec.objectives.clear();
  for (const std::string& objective : request.objectives) {
    spec.objectives.push_back(*partition::ParseObjective(objective));
  }
  spec.strategy_options.seed = request.seed;
  spec.strategy_options.annealing_iterations = request.annealing_iterations;

  const explore::ExploreResult result = toolchain_.Explore(spec);
  AccumulateWork(result);
  return {true, "", "", result.Json()};
}

Result<std::shared_ptr<const mips::SoftBinary>> Server::ObtainBinary(
    const std::string& benchmark, int opt_level) {
  const std::string key = benchmark + "@O" + std::to_string(opt_level);
  {
    const std::lock_guard<std::mutex> lock(binaries_mutex_);
    const auto it = binaries_.find(key);
    if (it != binaries_.end()) return it->second;
  }
  const suite::Benchmark* bench = suite::FindBenchmark(benchmark);
  if (bench == nullptr) {
    return Status::Error(ErrorKind::kUnsupported,
                         "unknown benchmark: " + benchmark);
  }
  Result<mips::SoftBinary> built = suite::BuildBinary(*bench, opt_level);
  if (!built.ok()) return built.status();
  auto binary = std::make_shared<const mips::SoftBinary>(
      std::move(built).take());
  const std::lock_guard<std::mutex> lock(binaries_mutex_);
  // First insert wins so concurrent compiles of one benchmark stay
  // deterministic (identical content either way).
  return binaries_.try_emplace(key, std::move(binary)).first->second;
}

ParseError Server::ValidateNames(const Request& request) const {
  const auto check_benchmark = [](const std::string& name) -> ParseError {
    if (suite::FindBenchmark(name) == nullptr) {
      return {kErrUnknownBenchmark, "unknown benchmark \"" + name + "\""};
    }
    return {};
  };
  const auto check_platform = [](const std::string& name) -> ParseError {
    if (!partition::PlatformRegistry::Global().Find(name).has_value()) {
      return {kErrUnknownPlatform, "unknown platform \"" + name + "\""};
    }
    return {};
  };
  const auto check_strategy = [](const std::string& name) -> ParseError {
    if (partition::StrategyRegistry::Global().Create(name) == nullptr) {
      return {kErrUnknownStrategy, "unknown strategy \"" + name + "\""};
    }
    return {};
  };

  ParseError error;
  if (request.kind == RequestKind::kPartition) {
    if (error = check_benchmark(request.benchmark); !error.code.empty()) {
      return error;
    }
    if (error = check_platform(request.platform); !error.code.empty()) {
      return error;
    }
    return check_strategy(request.strategy);
  }
  for (const std::string& name : request.benchmarks) {
    if (error = check_benchmark(name); !error.code.empty()) return error;
  }
  for (const std::string& name : request.platforms) {
    if (error = check_platform(name); !error.code.empty()) return error;
  }
  for (const std::string& name : request.strategies) {
    if (error = check_strategy(name); !error.code.empty()) return error;
  }
  return {};
}

void Server::AccumulateWork(const explore::ExploreResult& result) {
  simulations_run_.Add(result.simulations_run);
  decompilations_run_.Add(result.decompilations_run);
  partitions_run_.Add(result.partitions_run);
}

std::string Server::StatsJson() const {
  const Scheduler::Stats scheduler = scheduler_.stats();
  const explore::ArtifactCache::Stats cache = toolchain_.CacheStats();
  const partition::CandidateSetPool::Stats pool =
      toolchain_.artifact_cache()->candidate_pool()->stats();
  obs::Registry& registry = obs::Registry::Global();
  std::ostringstream out;
  out << "{\"schema\":" << kWireSchemaVersion
      << ",\"requests\":" << requests_.Value()
      << ",\"protocol_errors\":" << protocol_errors_.Value()
      << ",\"connections\":" << connections_served_.Value()
      // Live gauges (new fields; everything above keeps its name and shape
      // for existing parsers).
      << ",\"connections_open\":" << connections_open_.Value()
      << ",\"queue_depth\":" << registry.gauge("serve.queue_depth").Value()
      << ",\"in_flight\":" << registry.gauge("serve.in_flight").Value()
      << ",\"scheduler\":{\"submitted\":" << scheduler.submitted
      << ",\"executed\":" << scheduler.executed
      << ",\"coalesced\":" << scheduler.coalesced
      << ",\"rejected_overload\":" << scheduler.rejected_overload
      << ",\"deadline_expired\":" << scheduler.deadline_expired
      << ",\"max_queue_depth\":" << scheduler.max_queue_depth
      << "},\"work\":{\"simulations_run\":" << simulations_run_.Value()
      << ",\"decompilations_run\":" << decompilations_run_.Value()
      << ",\"partitions_run\":" << partitions_run_.Value()
      << "},\"cache\":{\"memory_hits\":" << cache.memory_hits
      << ",\"disk_hits\":" << cache.disk_hits
      << ",\"misses\":" << cache.misses
      << ",\"entries\":" << cache.entries
      << "},\"candidate_pool\":{\"scans\":" << pool.scans
      << ",\"hits\":" << pool.hits << ",\"entries\":" << pool.entries
      << ",\"synthesis_runs\":" << pool.synthesis_runs << "}}";
  return out.str();
}

}  // namespace b2h::serve
