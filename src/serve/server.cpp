#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "partition/strategy.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"

namespace b2h::serve {

namespace {

using support::JsonEscape;

/// How often blocked loops re-check the stop flag (accept poll, idle
/// connection reads).  Bounds shutdown latency without busy-waiting.
constexpr int kStopPollMs = 100;

/// ToolchainRun::Json()-shaped report for one explore point — same fields,
/// same order, same %.9g formatting, so a served `partition` report is
/// bit-identical to what a local Toolchain::RunOn + Json() produces for
/// the same request (asserted in test_serve).
std::string PartitionReportJson(const explore::ExplorePoint& point) {
  std::ostringstream out;
  char number[64];
  out << "{\"schema\":" << kReportSchemaVersion << ",\"binary\":\""
      << JsonEscape(point.binary_name) << "\",\"platform\":\""
      << JsonEscape(point.platform_name) << "\"";
  std::snprintf(number, sizeof number, "%.9g", point.speedup);
  out << ",\"speedup\":" << number;
  std::snprintf(number, sizeof number, "%.9g", point.energy_savings);
  out << ",\"energy_savings\":" << number;
  std::snprintf(number, sizeof number, "%.9g", point.area_gates);
  out << ",\"area_gates\":" << number;
  out << ",\"hw_regions\":[";
  for (std::size_t i = 0; i < point.hw_names.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(point.hw_names[i]) << "\"";
  }
  out << "],\"rejected\":[";
  for (std::size_t i = 0; i < point.rejected.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(point.rejected[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

/// The "progress" object of a progress frame / GET /v1/progress response.
std::string ProgressJson(const ProgressState& state) {
  std::ostringstream out;
  out << "{\"stage\":\"" << JsonEscape(state.stage) << "\""
      << ",\"stage_done\":" << state.stage_done
      << ",\"stage_total\":" << state.stage_total
      << ",\"points_total\":" << state.points_total
      << ",\"cache_hits\":" << state.cache_hits
      << ",\"done\":" << (state.done ? "true" : "false") << "}";
  return out.str();
}

ProgressState ToProgressState(const explore::ExploreProgress& progress) {
  ProgressState state;
  state.stage = progress.stage;
  state.stage_done = progress.stage_done;
  state.stage_total = progress.stage_total;
  state.points_total = progress.points_total;
  state.cache_hits = progress.cache_hits;
  state.done = progress.done;
  return state;
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      scheduler_(Scheduler::Options{options_.workers, options_.max_queue}),
      requests_(obs::Registry::Global().counter("serve.requests")),
      protocol_errors_(obs::Registry::Global().counter(
          "serve.protocol_errors")),
      connections_served_(obs::Registry::Global().counter(
          "serve.connections")),
      http_requests_(obs::Registry::Global().counter("serve.http_requests")),
      simulations_run_(obs::Registry::Global().counter(
          "serve.simulations_run")),
      decompilations_run_(obs::Registry::Global().counter(
          "serve.decompilations_run")),
      partitions_run_(obs::Registry::Global().counter("serve.partitions_run")),
      connections_open_(obs::Registry::Global().gauge(
          "serve.connections_open")),
      partition_latency_ms_(obs::Registry::Global().histogram(
          "serve.latency_ms.partition")),
      explore_latency_ms_(obs::Registry::Global().histogram(
          "serve.latency_ms.explore")) {
  // A fresh daemon starts its serve.* instruments at zero — the behavior of
  // the per-instance counters this registry family replaced.  The registry
  // is process-global, but a process runs one Server (b2h-serve) and the
  // tests construct daemons sequentially, so nothing live is zeroed.
  requests_.Reset();
  protocol_errors_.Reset();
  connections_served_.Reset();
  http_requests_.Reset();
  simulations_run_.Reset();
  decompilations_run_.Reset();
  partitions_run_.Reset();
  connections_open_.Reset();
  partition_latency_ms_.Reset();
  explore_latency_ms_.Reset();
  toolchain_.WithThreads(options_.toolchain_threads);
  if (!options_.cache_dir.empty()) {
    toolchain_.WithCacheDir(options_.cache_dir);
  }
  // The flight recorder is always on for a daemon: when something goes
  // wrong, the last few thousand spans are already in memory waiting for
  // the dump writer — no need to have started with --trace-out.
  obs::Tracer::Global().EnableFlight();
  forensics_.dump_dir = options_.dump_dir;
  forensics_.requests = &request_log_;
}

Server::~Server() {
  RequestShutdown();
  if (accept_thread_.joinable()) Wait();
}

Status Server::Start() {
  std::string error;
  listen_fd_ = support::ListenUnix(options_.socket_path, 64, &error);
  if (listen_fd_ < 0) {
    return Status::Error(ErrorKind::kResource, "b2h-serve: " + error);
  }
  if (options_.http_port >= 0) {
    std::uint16_t bound = 0;
    http_listen_fd_ = support::ListenTcp(
        static_cast<std::uint16_t>(options_.http_port), 64, &bound, &error);
    if (http_listen_fd_ < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(options_.socket_path.c_str());
      return Status::Error(ErrorKind::kResource, "b2h-serve http: " + error);
    }
    http_port_ = bound;
  }
  if (!options_.dump_dir.empty()) {
    InstallCrashHandlers(&forensics_);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (http_listen_fd_ >= 0) {
    http_accept_thread_ = std::thread([this] { HttpAcceptLoop(); });
  }
  return Status::Ok();
}

void Server::Wait() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kStopPollMs / 2));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (http_accept_thread_.joinable()) http_accept_thread_.join();
  // Drain order matters: failing queued jobs / finishing running ones
  // unblocks any connection thread parked in Scheduler::Run, after which
  // every connection loop observes the stop flag and exits.
  scheduler_.Stop();
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (http_listen_fd_ >= 0) {
    ::close(http_listen_fd_);
    http_listen_fd_ = -1;
  }
  // Crash handlers hold a pointer into this Server; detach it before the
  // object can die (tests construct daemons sequentially in one process).
  if (!options_.dump_dir.empty()) {
    InstallCrashHandlers(nullptr);
  }
  // The daemon owns its socket path; leaving the file behind would make a
  // later `connect` hang instead of failing fast.
  ::unlink(options_.socket_path.c_str());
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, kStopPollMs);
    if (polled <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::HttpAcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{http_listen_fd_, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, kStopPollMs);
    if (polled <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int fd = ::accept4(http_listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { ServeHttpConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  connections_served_.Add(1);
  connections_open_.Add(1);
  // Mid-request frame sink for progress streaming; HandleWork only uses it
  // when the request opted in (progress:true).
  const FrameSink frame_sink = [this, fd](std::string_view frame) {
    return support::WriteFrame(fd, frame, options_.max_frame_bytes);
  };
  std::string payload;
  while (!stopping_.load()) {
    const support::FrameStatus status = support::ReadFrame(
        fd, &payload, options_.max_frame_bytes, kStopPollMs);
    if (status == support::FrameStatus::kTimeout) continue;  // idle tick
    if (status == support::FrameStatus::kClosed) break;
    if (status == support::FrameStatus::kOversized) {
      // The prefix was consumed but the payload not; the stream is out of
      // sync, so answer structurally and close THIS connection only.
      protocol_errors_.Add(1);
      (void)support::WriteFrame(
          fd,
          ErrorResponse("", kErrBadFrame,
                        "frame exceeds the " +
                            std::to_string(options_.max_frame_bytes) +
                            "-byte cap"),
          options_.max_frame_bytes);
      break;
    }
    if (status != support::FrameStatus::kOk) break;  // truncated / error

    const std::string response = HandleRequest(payload, &frame_sink);
    if (!support::WriteFrame(fd, response, options_.max_frame_bytes)) break;
  }
  connections_open_.Add(-1);
  ::close(fd);
}

void Server::ServeHttpConnection(int fd) {
  connections_served_.Add(1);
  connections_open_.Add(1);
  // Wait for the first request byte in stop-aware slices, then read the
  // whole request in one bounded call (ReadHttpRequest keeps its own
  // buffer, so the accumulation must happen in a single invocation).
  while (!stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, kStopPollMs);
    if (polled > 0) break;
    if (polled < 0 && errno != EINTR) {
      connections_open_.Add(-1);
      ::close(fd);
      return;
    }
  }
  if (stopping_.load()) {
    connections_open_.Add(-1);
    ::close(fd);
    return;
  }
  support::HttpRequest request;
  const support::HttpStatus status = support::ReadHttpRequest(
      fd, &request, options_.max_frame_bytes, /*timeout_ms=*/2000);
  switch (status) {
    case support::HttpStatus::kOk:
      HandleHttp(fd, request);
      break;
    case support::HttpStatus::kMalformed:
      protocol_errors_.Add(1);
      (void)support::WriteHttpResponse(fd, 400, "Bad Request", "text/plain",
                                       "malformed HTTP request\n");
      break;
    case support::HttpStatus::kOversized:
      protocol_errors_.Add(1);
      (void)support::WriteHttpResponse(
          fd, 413, "Payload Too Large", "text/plain",
          "header block or body exceeds the configured cap\n");
      break;
    case support::HttpStatus::kTimeout:
      (void)support::WriteHttpResponse(fd, 408, "Request Timeout",
                                       "text/plain",
                                       "request not completed in time\n");
      break;
    case support::HttpStatus::kClosed:
    case support::HttpStatus::kError:
      break;  // nothing sensible to answer
  }
  connections_open_.Add(-1);
  ::close(fd);
}

void Server::HandleHttp(int fd, const support::HttpRequest& request) {
  http_requests_.Add(1);
  obs::ScopedSpan span("serve.http", "serve");
  span.Arg("method", request.method).Arg("target", request.target);
  std::string_view target = request.target;
  if (const std::size_t query = target.find('?');
      query != std::string_view::npos) {
    target = target.substr(0, query);  // routing ignores the query string
  }

  if (request.method == "GET") {
    if (target == "/metrics") {
      (void)support::WriteHttpResponse(
          fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
          obs::Registry::Global().PrometheusText());
      return;
    }
    if (target == "/healthz") {
      obs::Registry& registry = obs::Registry::Global();
      const std::int64_t queue_depth =
          registry.gauge("serve.queue_depth").Value();
      const std::int64_t in_flight =
          registry.gauge("serve.in_flight").Value();
      const bool shutting_down = stopping_.load();
      const bool overloaded =
          queue_depth >= static_cast<std::int64_t>(options_.max_queue);
      const bool healthy = !shutting_down && !overloaded;
      std::ostringstream body;
      body << "{\"ok\":" << (healthy ? "true" : "false")
           << ",\"stopping\":" << (shutting_down ? "true" : "false")
           << ",\"overloaded\":" << (overloaded ? "true" : "false")
           << ",\"queue_depth\":" << queue_depth
           << ",\"max_queue\":" << options_.max_queue
           << ",\"in_flight\":" << in_flight << "}";
      (void)support::WriteHttpResponse(
          fd, healthy ? 200 : 503, healthy ? "OK" : "Service Unavailable",
          "application/json", body.str());
      return;
    }
    if (target == "/trace") {
      (void)support::WriteHttpResponse(
          fd, 200, "OK", "application/json",
          obs::Tracer::Global().FlightChromeTraceJson());
      return;
    }
    constexpr std::string_view kProgressPrefix = "/v1/progress/";
    if (target.size() > kProgressPrefix.size() &&
        target.substr(0, kProgressPrefix.size()) == kProgressPrefix) {
      const std::string corr(target.substr(kProgressPrefix.size()));
      const std::optional<std::string> key = request_log_.KeyForCorr(corr);
      std::optional<ProgressState> state;
      if (key.has_value()) state = progress_.Get(*key);
      if (!state.has_value()) {
        (void)support::WriteHttpResponse(
            fd, 404, "Not Found", "application/json",
            "{\"error\":\"unknown correlation id\"}");
        return;
      }
      (void)support::WriteHttpResponse(
          fd, 200, "OK", "application/json",
          "{\"corr\":\"" + JsonEscape(corr) +
              "\",\"progress\":" + ProgressJson(*state) + "}");
      return;
    }
    (void)support::WriteHttpResponse(fd, 404, "Not Found", "text/plain",
                                     "unknown target\n");
    return;
  }

  if (request.method == "POST") {
    const char* kind = nullptr;
    if (target == "/v1/partition") {
      kind = "partition";
    } else if (target == "/v1/explore") {
      kind = "explore";
    }
    if (kind == nullptr) {
      (void)support::WriteHttpResponse(fd, 404, "Not Found", "text/plain",
                                       "unknown target\n");
      return;
    }
    // The body is the framed wire payload verbatim (so HTTP and framed
    // clients produce byte-identical reports); "kind" may be omitted — the
    // path supplies it — but must match the path when present.
    std::string payload = request.body;
    const std::optional<support::JsonValue> parsed =
        support::JsonValue::Parse(payload);
    if (parsed.has_value() && parsed->is_object()) {
      const support::JsonValue* body_kind = parsed->Find("kind");
      if (body_kind == nullptr) {
        const std::size_t brace = payload.find('{');
        std::size_t after = brace + 1;
        while (after < payload.size() &&
               std::isspace(static_cast<unsigned char>(payload[after]))) {
          ++after;
        }
        const bool empty_object =
            after < payload.size() && payload[after] == '}';
        payload.insert(brace + 1, std::string("\"kind\":\"") + kind +
                                      (empty_object ? "\"" : "\","));
      } else if (!body_kind->is_string() || body_kind->string() != kind) {
        protocol_errors_.Add(1);
        (void)support::WriteHttpResponse(
            fd, 400, "Bad Request", "application/json",
            ErrorResponse("", kErrBadRequest,
                          std::string("\"kind\" must match the request path "
                                      "(expected \"") +
                              kind + "\")"));
        return;
      }
    }
    // Through the same HandleRequest as framed clients: shared parsing,
    // validation, coalescing, deadlines, and cache.  Protocol-level
    // failures ride the JSON envelope (ok:false) with HTTP 200.
    const std::string response = HandleRequest(payload, nullptr);
    (void)support::WriteHttpResponse(fd, 200, "OK", "application/json",
                                     response);
    return;
  }

  (void)support::WriteHttpResponse(fd, 405, "Method Not Allowed", "text/plain",
                                   "only GET and POST are supported\n");
}

std::string Server::HandleRequest(std::string_view payload,
                                  const FrameSink* frame_sink) {
  requests_.Add(1);
  obs::ScopedSpan span("serve.request", "serve");
  ParseError error;
  const std::optional<Request> request = ParseRequest(payload, &error);
  if (!request.has_value()) {
    protocol_errors_.Add(1);
    span.Arg("kind", "invalid");
    return ErrorResponse("", error.code, error.message);
  }
  // Correlation id: client-supplied when present, server-stamped otherwise.
  // Every span and the response envelope carry it, so a trace, a forensics
  // dump, or a progress poll can be tied back to this exact request.
  const std::string corr =
      request->corr.empty() ? "c-" + std::to_string(next_corr_.fetch_add(1))
                            : request->corr;
  span.Arg("kind", RequestKindName(request->kind)).Arg("corr", corr);
  switch (request->kind) {
    case RequestKind::kPing:
      return OkResponse(request->id, "{\"pong\":true}", "{}", corr);
    case RequestKind::kStats:
      // Stats are volatile by definition, so they ride in "served", never
      // in the deterministic "report" slot.
      return OkResponse(request->id, "{}", StatsJson(), corr);
    case RequestKind::kMetrics:
      // Full registry snapshot, schema-stamped by SnapshotJson itself
      // (kMetricsSchemaVersion).  Volatile like stats: "served" slot only.
      return OkResponse(request->id, "{}",
                        obs::Registry::Global().SnapshotJson(), corr);
    case RequestKind::kDump: {
      // Operator-triggered forensics bundle — same writer, same shape as a
      // crash dump.  The path is delivery metadata: "served" slot.
      const std::string path = WriteForensicsDump(forensics_, "request");
      if (path.empty()) {
        return ErrorResponse(request->id, kErrBadRequest,
                             "forensics dumping is disabled (start b2h-serve "
                             "with --dump-dir) or the write failed",
                             corr);
      }
      return OkResponse(request->id, "{}",
                        "{\"path\":\"" + JsonEscape(path) + "\"}", corr);
    }
    case RequestKind::kShutdown:
      RequestShutdown();
      return OkResponse(request->id, "{}", "{\"stopping\":true}", corr);
    case RequestKind::kPartition:
    case RequestKind::kExplore:
      return HandleWork(*request, corr, frame_sink);
  }
  return ErrorResponse(request->id, kErrInternal, "unreachable request kind",
                       corr);
}

std::string Server::HandleWork(const Request& request, const std::string& corr,
                               const FrameSink* frame_sink) {
  const ParseError invalid = ValidateNames(request);
  if (!invalid.code.empty()) {
    protocol_errors_.Add(1);
    return ErrorResponse(request.id, invalid.code, invalid.message, corr);
  }

  const std::string key = RequestKey(request);
  request_log_.Begin(corr, key, RequestKindName(request.kind));
  Request job_request = request;  // owned copy; outlives this frame
  obs::ScopedSpan span("serve.dispatch", "serve");
  span.Arg("key", key).Arg("corr", corr);
  const obs::Stopwatch latency;  // queue + coalesce + execute, as the
                                 // connection thread sees it

  // Progress streaming: a framed client that asked (progress:true) gets
  // board snapshots as interleaved frames while it waits; the poll runs on
  // THIS connection thread every Scheduler::kPollIntervalMs, so a slow or
  // dead client only ever stalls itself.  HTTP pollers read the same board
  // through GET /v1/progress/<corr> instead.
  std::function<void()> poll;
  if (request.progress && frame_sink != nullptr && *frame_sink) {
    poll = [this, frame_sink, &key, &request, &corr,
            last_sent = std::string()]() mutable {
      const std::optional<ProgressState> state = progress_.Get(key);
      if (!state.has_value()) return;
      std::string progress_json = ProgressJson(*state);
      if (progress_json == last_sent) return;  // no news, no frame
      last_sent = std::move(progress_json);
      (void)(*frame_sink)(ProgressFrame(request.id, corr, last_sent));
    };
  }
  const Scheduler::Outcome outcome = scheduler_.Run(
      key,
      [this, job_request = std::move(job_request), key, corr]() -> JobResult {
        return job_request.kind == RequestKind::kPartition
                   ? DoPartition(job_request, key, corr)
                   : DoExplore(job_request, key, corr);
      },
      request.deadline_ms, poll);
  const double millis = latency.Millis();
  (request.kind == RequestKind::kPartition ? partition_latency_ms_
                                           : explore_latency_ms_)
      .Observe(millis);
  span.Arg("coalesced", static_cast<int>(outcome.coalesced));

  switch (outcome.code) {
    case Scheduler::OutcomeCode::kOverloaded:
      request_log_.Finish(corr, kErrOverloaded, millis);
      return ErrorResponse(request.id, kErrOverloaded,
                           "admission queue is full; retry later", corr);
    case Scheduler::OutcomeCode::kDeadline:
      request_log_.Finish(corr, kErrDeadline, millis);
      return ErrorResponse(request.id, kErrDeadline,
                           "deadline of " +
                               std::to_string(request.deadline_ms) +
                               " ms expired (the computation continues and "
                               "will be served warm)",
                           corr);
    case Scheduler::OutcomeCode::kShuttingDown:
      request_log_.Finish(corr, kErrShuttingDown, millis);
      return ErrorResponse(request.id, kErrShuttingDown,
                           "server is shutting down", corr);
    case Scheduler::OutcomeCode::kDone:
      break;
  }
  const JobResult& result = *outcome.result;
  if (!result.ok) {
    request_log_.Finish(corr, result.error_code, millis);
    return ErrorResponse(request.id, result.error_code, result.error_message,
                         corr);
  }
  request_log_.Finish(corr, "ok", millis);
  return OkResponse(request.id, result.report,
                    outcome.coalesced ? "{\"coalesced\":true}"
                                      : "{\"coalesced\":false}",
                    corr);
}

JobResult Server::DoPartition(Request request, std::string key,
                              std::string corr) {
  obs::ScopedSpan span("serve.partition", "serve");
  span.Arg("benchmark", request.benchmark)
      .Arg("platform", request.platform)
      .Arg("strategy", request.strategy)
      .Arg("corr", corr);
  auto binary = ObtainBinary(request.benchmark, request.opt_level);
  if (!binary.ok()) {
    return {false, kErrInternal, binary.status().message(), ""};
  }
  explore::ExploreSpec spec;
  spec.binaries = {{request.benchmark, binary.value()}};
  spec.platforms = {request.platform};
  spec.strategies = {request.strategy};
  spec.objectives = {*partition::ParseObjective(request.objective)};
  spec.strategy_options.seed = request.seed;
  spec.strategy_options.annealing_iterations = request.annealing_iterations;
  spec.progress = [this, &key](const explore::ExploreProgress& progress) {
    progress_.Update(key, ToProgressState(progress));
  };

  // Through Explore — not Run — so the request hits the shared artifact
  // cache and candidate pool; a repeat of this request does zero work.
  const explore::ExploreResult result = toolchain_.Explore(spec);
  AccumulateWork(result);
  const explore::ExplorePoint& point = result.At(0, 0, 0, 0);
  if (!point.status.ok()) {
    return {false, kErrFlowFailed, point.status.message(), ""};
  }
  return {true, "", "", PartitionReportJson(point)};
}

JobResult Server::DoExplore(Request request, std::string key,
                            std::string corr) {
  obs::ScopedSpan span("serve.explore", "serve");
  span.Arg("benchmarks", static_cast<std::uint64_t>(request.benchmarks.size()))
      .Arg("platforms", static_cast<std::uint64_t>(request.platforms.size()))
      .Arg("strategies",
           static_cast<std::uint64_t>(request.strategies.size()))
      .Arg("corr", corr);
  explore::ExploreSpec spec;
  spec.binaries.reserve(request.benchmarks.size());
  for (const std::string& benchmark : request.benchmarks) {
    auto binary = ObtainBinary(benchmark, request.opt_level);
    if (!binary.ok()) {
      return {false, kErrInternal, binary.status().message(), ""};
    }
    spec.binaries.push_back({benchmark, binary.value()});
  }
  spec.platforms = request.platforms;
  spec.strategies = request.strategies;
  spec.objectives.clear();
  for (const std::string& objective : request.objectives) {
    spec.objectives.push_back(*partition::ParseObjective(objective));
  }
  spec.strategy_options.seed = request.seed;
  spec.strategy_options.annealing_iterations = request.annealing_iterations;
  spec.progress = [this, &key](const explore::ExploreProgress& progress) {
    progress_.Update(key, ToProgressState(progress));
  };

  const explore::ExploreResult result = toolchain_.Explore(spec);
  AccumulateWork(result);
  return {true, "", "", result.Json()};
}

Result<std::shared_ptr<const mips::SoftBinary>> Server::ObtainBinary(
    const std::string& benchmark, int opt_level) {
  const std::string key = benchmark + "@O" + std::to_string(opt_level);
  {
    const std::lock_guard<std::mutex> lock(binaries_mutex_);
    const auto it = binaries_.find(key);
    if (it != binaries_.end()) return it->second;
  }
  const suite::Benchmark* bench = suite::FindBenchmark(benchmark);
  if (bench == nullptr) {
    return Status::Error(ErrorKind::kUnsupported,
                         "unknown benchmark: " + benchmark);
  }
  Result<mips::SoftBinary> built = suite::BuildBinary(*bench, opt_level);
  if (!built.ok()) return built.status();
  auto binary = std::make_shared<const mips::SoftBinary>(
      std::move(built).take());
  const std::lock_guard<std::mutex> lock(binaries_mutex_);
  // First insert wins so concurrent compiles of one benchmark stay
  // deterministic (identical content either way).
  return binaries_.try_emplace(key, std::move(binary)).first->second;
}

ParseError Server::ValidateNames(const Request& request) const {
  const auto check_benchmark = [](const std::string& name) -> ParseError {
    if (suite::FindBenchmark(name) == nullptr) {
      return {kErrUnknownBenchmark, "unknown benchmark \"" + name + "\""};
    }
    return {};
  };
  const auto check_platform = [](const std::string& name) -> ParseError {
    if (!partition::PlatformRegistry::Global().Find(name).has_value()) {
      return {kErrUnknownPlatform, "unknown platform \"" + name + "\""};
    }
    return {};
  };
  const auto check_strategy = [](const std::string& name) -> ParseError {
    if (partition::StrategyRegistry::Global().Create(name) == nullptr) {
      return {kErrUnknownStrategy, "unknown strategy \"" + name + "\""};
    }
    return {};
  };

  ParseError error;
  if (request.kind == RequestKind::kPartition) {
    if (error = check_benchmark(request.benchmark); !error.code.empty()) {
      return error;
    }
    if (error = check_platform(request.platform); !error.code.empty()) {
      return error;
    }
    return check_strategy(request.strategy);
  }
  for (const std::string& name : request.benchmarks) {
    if (error = check_benchmark(name); !error.code.empty()) return error;
  }
  for (const std::string& name : request.platforms) {
    if (error = check_platform(name); !error.code.empty()) return error;
  }
  for (const std::string& name : request.strategies) {
    if (error = check_strategy(name); !error.code.empty()) return error;
  }
  return {};
}

void Server::AccumulateWork(const explore::ExploreResult& result) {
  simulations_run_.Add(result.simulations_run);
  decompilations_run_.Add(result.decompilations_run);
  partitions_run_.Add(result.partitions_run);
}

std::string Server::StatsJson() const {
  const Scheduler::Stats scheduler = scheduler_.stats();
  const explore::ArtifactCache::Stats cache = toolchain_.CacheStats();
  const mips::SharedBlockCache::Stats blockcache = Toolchain::BlockCacheStats();
  const partition::CandidateSetPool::Stats pool =
      toolchain_.artifact_cache()->candidate_pool()->stats();
  obs::Registry& registry = obs::Registry::Global();
  std::ostringstream out;
  out << "{\"schema\":" << kWireSchemaVersion
      << ",\"requests\":" << requests_.Value()
      << ",\"protocol_errors\":" << protocol_errors_.Value()
      << ",\"connections\":" << connections_served_.Value()
      << ",\"http_requests\":" << http_requests_.Value()
      // Live gauges (new fields; everything above keeps its name and shape
      // for existing parsers).
      << ",\"connections_open\":" << connections_open_.Value()
      << ",\"queue_depth\":" << registry.gauge("serve.queue_depth").Value()
      << ",\"in_flight\":" << registry.gauge("serve.in_flight").Value()
      << ",\"scheduler\":{\"submitted\":" << scheduler.submitted
      << ",\"executed\":" << scheduler.executed
      << ",\"coalesced\":" << scheduler.coalesced
      << ",\"rejected_overload\":" << scheduler.rejected_overload
      << ",\"deadline_expired\":" << scheduler.deadline_expired
      << ",\"max_queue_depth\":" << scheduler.max_queue_depth
      << "},\"work\":{\"simulations_run\":" << simulations_run_.Value()
      << ",\"decompilations_run\":" << decompilations_run_.Value()
      << ",\"partitions_run\":" << partitions_run_.Value()
      << "},\"cache\":{\"memory_hits\":" << cache.memory_hits
      << ",\"disk_hits\":" << cache.disk_hits
      << ",\"misses\":" << cache.misses
      << ",\"entries\":" << cache.entries
      << "},\"blockcache\":{\"hits\":" << blockcache.hits
      << ",\"misses\":" << blockcache.misses
      << ",\"evictions\":" << blockcache.evictions
      << ",\"bytes\":" << blockcache.bytes
      << ",\"entries\":" << blockcache.entries
      // Tier-3 translation state (resident traces + process-monotonic
      // promotion/chaining counters; see docs/ENGINE.md "Tier 3").
      << ",\"translated_traces\":" << blockcache.translated_traces
      << ",\"translated_bytes\":" << blockcache.translated_bytes
      << ",\"promotions\":" << blockcache.promotions
      << ",\"chain_hits\":" << blockcache.chain_hits
      << ",\"chain_misses\":" << blockcache.chain_misses
      << ",\"evicted_translated\":" << blockcache.evicted_translated
      << "},\"candidate_pool\":{\"scans\":" << pool.scans
      << ",\"hits\":" << pool.hits << ",\"entries\":" << pool.entries
      << ",\"synthesis_runs\":" << pool.synthesis_runs << "}}";
  return out.str();
}

}  // namespace b2h::serve
