// Request scheduler of the b2h-serve daemon: a bounded worker pool with
// single-flight coalescing and per-request deadlines.
//
// Three properties the multi-tenant tests key on:
//
//   * Coalescing — concurrent submissions with the same content key attach
//     to one computation: the work closure runs once and its result fans
//     out to every waiter (Outcome::coalesced marks the attachers, and the
//     stats count them, so tests can assert single-computation behavior).
//   * Deadlines — a waiter whose deadline expires gets a kDeadline outcome
//     immediately; the computation itself KEEPS RUNNING and completes into
//     the shared artifact cache, so a timed-out request can never poison
//     the cache or strand coalesced peers.
//   * Bounded admission — at most `max_queue` jobs may be queued beyond
//     the running ones; further novel submissions are rejected with
//     kOverloaded without blocking (attaching to in-flight work is always
//     admitted — it adds no load).
//
// The scheduler is generic: it moves JobResult payloads around and never
// looks inside them.  The server supplies closures that do toolchain work
// and must not throw; a throwing closure is downgraded to an `internal`
// JobResult rather than taking the daemon down.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace b2h::serve {

/// What one computation produced.  Shared verbatim by every coalesced
/// waiter, so it must be a pure function of the job key (the report JSON
/// is; delivery metadata lives outside, in the server's response
/// envelope).
struct JobResult {
  bool ok = true;
  std::string error_code;     ///< protocol error code when !ok
  std::string error_message;  ///< human-readable detail when !ok
  std::string report;         ///< deterministic report JSON when ok
};

class Scheduler {
 public:
  struct Options {
    unsigned workers = 2;        ///< concurrent heavy computations
    std::size_t max_queue = 64;  ///< queued (not yet running) job bound
  };

  enum class OutcomeCode {
    kDone,          ///< result is valid (ok or structured work error)
    kOverloaded,    ///< admission queue full; nothing was queued
    kDeadline,      ///< deadline expired while queued/running
    kShuttingDown,  ///< scheduler stopping; nothing was queued
  };

  struct Outcome {
    OutcomeCode code = OutcomeCode::kDone;
    std::shared_ptr<const JobResult> result;  ///< set when kDone
    bool coalesced = false;  ///< attached to an already-submitted job
  };

  struct Stats {
    std::size_t submitted = 0;  ///< Run() calls admitted (incl. coalesced)
    std::size_t executed = 0;   ///< work closures actually run
    std::size_t coalesced = 0;  ///< submissions served by an in-flight job
    std::size_t rejected_overload = 0;
    std::size_t deadline_expired = 0;
    std::size_t max_queue_depth = 0;  ///< high-water mark of the queue
  };

  explicit Scheduler(Options options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// How often the waiting thread invokes the Run() poll callback.
  static constexpr int kPollIntervalMs = 25;

  /// Submit (or attach to) the job named by `key` and wait for its result
  /// up to `deadline_ms` (< 0 = forever).  Blocking: call from connection
  /// threads, not from work closures.
  [[nodiscard]] Outcome Run(const std::string& key,
                            std::function<JobResult()> work, int deadline_ms);

  /// Same, but invokes `poll` from the waiting thread roughly every
  /// kPollIntervalMs while the job runs — the progress-streaming hook: the
  /// connection thread forwards board snapshots to its client between
  /// wakeups.  `poll` runs with the scheduler mutex RELEASED, so it may
  /// block on socket writes; it must not call back into the scheduler.
  [[nodiscard]] Outcome Run(const std::string& key,
                            std::function<JobResult()> work, int deadline_ms,
                            const std::function<void()>& poll);

  /// Stop accepting work, fail queued-but-unstarted jobs with
  /// `shutting-down`, finish running ones, and join the workers.
  /// Idempotent.
  void Stop();

  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    std::string key;
    std::function<JobResult()> work;
    std::shared_ptr<const JobResult> result;
    bool done = false;
  };

  void WorkerLoop();

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers: queue non-empty / stop
  std::condition_variable done_cv_;   ///< waiters: some job finished
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> in_flight_;
  Stats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace b2h::serve
