#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/obs.hpp"
#include "serve/protocol.hpp"

namespace b2h::serve {

namespace {

/// Registry-backed queue gauges, resolved once (instrument lookup takes a
/// mutex; these are touched on every submit/execute).  serve.queue_depth is
/// the live queued-not-running count, serve.in_flight the closures
/// currently executing on workers.
struct QueueMetrics {
  obs::Gauge& queue_depth;
  obs::Gauge& in_flight;

  static QueueMetrics& Get() {
    static QueueMetrics& metrics = *new QueueMetrics{
        obs::Registry::Global().gauge("serve.queue_depth"),
        obs::Registry::Global().gauge("serve.in_flight")};
    return metrics;
  }
};

}  // namespace

Scheduler::Scheduler(Options options) : options_(options) {
  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Stop(); }

Scheduler::Outcome Scheduler::Run(const std::string& key,
                                  std::function<JobResult()> work,
                                  int deadline_ms) {
  return Run(key, std::move(work), deadline_ms, nullptr);
}

Scheduler::Outcome Scheduler::Run(const std::string& key,
                                  std::function<JobResult()> work,
                                  int deadline_ms,
                                  const std::function<void()>& poll) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return {OutcomeCode::kShuttingDown, nullptr, false};

  std::shared_ptr<Job> job;
  bool coalesced = false;
  const auto it = in_flight_.find(key);
  if (it != in_flight_.end()) {
    // Single-flight: identical work is already queued or running — attach.
    job = it->second;
    coalesced = true;
    ++stats_.coalesced;
  } else {
    if (queue_.size() >= options_.max_queue) {
      ++stats_.rejected_overload;
      return {OutcomeCode::kOverloaded, nullptr, false};
    }
    job = std::make_shared<Job>();
    job->key = key;
    job->work = std::move(work);
    in_flight_.emplace(key, job);
    queue_.push_back(job);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    QueueMetrics::Get().queue_depth.Set(
        static_cast<std::int64_t>(queue_.size()));
    queue_cv_.notify_one();
  }
  ++stats_.submitted;

  const auto finished = [&job] { return job->done; };
  if (poll == nullptr) {
    if (deadline_ms < 0) {
      done_cv_.wait(lock, finished);
    } else if (!done_cv_.wait_for(lock,
                                  std::chrono::milliseconds(deadline_ms),
                                  finished)) {
      // The waiter gives up; the job object stays queued/running and will
      // complete into the caches for the next identical request.
      ++stats_.deadline_expired;
      return {OutcomeCode::kDeadline, nullptr, coalesced};
    }
    return {OutcomeCode::kDone, job->result, coalesced};
  }

  // Polling wait: wake at least every kPollIntervalMs, run `poll` with the
  // mutex released (it may block on a socket write), re-check on relock.
  using Clock = std::chrono::steady_clock;
  const bool has_deadline = deadline_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? deadline_ms : 0);
  while (!job->done) {
    Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(kPollIntervalMs);
    if (has_deadline && deadline < wake) wake = deadline;
    done_cv_.wait_until(lock, wake, finished);
    if (job->done) break;
    if (has_deadline && Clock::now() >= deadline) {
      ++stats_.deadline_expired;
      return {OutcomeCode::kDeadline, nullptr, coalesced};
    }
    lock.unlock();
    poll();
    lock.lock();
  }
  return {OutcomeCode::kDone, job->result, coalesced};
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;  // Stop() already failed everything queued
    const std::shared_ptr<Job> job = queue_.front();
    queue_.pop_front();
    QueueMetrics& metrics = QueueMetrics::Get();
    metrics.queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
    metrics.in_flight.Add(1);
    lock.unlock();

    JobResult result;
    try {
      obs::ScopedSpan span("serve.execute", "serve");
      span.Arg("key", job->key);
      result = job->work();
    } catch (const std::exception& e) {
      result = {false, kErrInternal,
                std::string("work closure threw: ") + e.what(), ""};
    } catch (...) {
      result = {false, kErrInternal, "work closure threw", ""};
    }
    metrics.in_flight.Add(-1);

    lock.lock();
    job->result = std::make_shared<const JobResult>(std::move(result));
    job->done = true;
    in_flight_.erase(job->key);
    ++stats_.executed;
    done_cv_.notify_all();
  }
}

void Scheduler::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Second Stop(): workers already told to exit; fall through to join.
    } else {
      stopping_ = true;
      // Fail everything admitted but not yet started; running jobs finish
      // normally (their waiters get real results even during shutdown).
      for (const std::shared_ptr<Job>& job : queue_) {
        job->result = std::make_shared<const JobResult>(JobResult{
            false, kErrShuttingDown, "server is shutting down", ""});
        job->done = true;
        in_flight_.erase(job->key);
      }
      queue_.clear();
      QueueMetrics::Get().queue_depth.Set(0);
    }
    queue_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Scheduler::Stats Scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace b2h::serve
