// Flight-recorder forensics for the serve daemon: a bounded request log
// (correlation id -> key/kind/status/latency, in-flight and recently
// completed), a progress board for long explores, and the crash-time dump
// writer that bundles all of it with the obs flight ring and a full metrics
// snapshot into one atomically-written JSON file.
//
// The dump path is deliberately best-effort: it runs from fault handlers
// (SIGSEGV/SIGABRT/std::terminate) where almost nothing is guaranteed, so
// it must never make things worse — allocation or I/O failure inside the
// dump simply loses the dump, not the crash's original cause.  That
// trade-off (useful forensics most of the time over async-signal-safety
// all of the time) matches what a black-box recorder is for.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace b2h::serve {

// ------------------------------------------------------------- RequestLog

/// One request as the log remembers it.  `latency_ms` is elapsed-so-far
/// for in-flight records, final latency for completed ones.
struct RequestRecord {
  std::string corr;    // correlation id (server-stamped or client-supplied)
  std::string key;     // coalescing RequestKey ("" for non-work kinds)
  std::string kind;    // ping/partition/explore/...
  std::string status;  // "in-flight", "ok", or an error code
  double latency_ms = 0.0;
  std::uint64_t seq = 0;  // admission order, process-unique
};

/// Bounded, mutex-guarded log of requests by correlation id: everything
/// currently in flight plus the last kRecent completed.  This is the
/// last-N-requests section of a forensics dump and the corr -> key
/// indirection for progress polling.
class RequestLog {
 public:
  static constexpr std::size_t kRecent = 64;

  /// Admit a request.  Duplicate corr (two live requests reusing one id)
  /// overwrites the older record — ids are expected unique per live
  /// request, not enforced.
  void Begin(std::string_view corr, std::string_view key,
             std::string_view kind);
  /// Complete a request ("ok" or an error code).  Unknown corr is a no-op.
  void Finish(std::string_view corr, std::string_view status,
              double latency_ms);

  /// Coalescing key for a correlation id, searching in-flight first, then
  /// the completed ring newest-first.  nullopt when the id is unknown.
  [[nodiscard]] std::optional<std::string> KeyForCorr(
      std::string_view corr) const;

  /// In-flight records, admission order, with elapsed-so-far latencies.
  [[nodiscard]] std::vector<RequestRecord> InFlight() const;
  /// Completed records, oldest first (at most kRecent).
  [[nodiscard]] std::vector<RequestRecord> Recent() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::vector<RequestRecord> in_flight_;   // small: bounded by live conns
  std::vector<RequestRecord> recent_;      // ring, bounded at kRecent
  std::vector<std::uint64_t> start_ns_;    // parallel to in_flight_
};

// ----------------------------------------------------------- ProgressBoard

/// Point-in-time progress of one in-flight (or just-finished) work item.
struct ProgressState {
  std::string stage;           // "decompile", "rehydrate", "partition", ...
  std::uint64_t stage_done = 0;
  std::uint64_t stage_total = 0;
  std::uint64_t points_total = 0;  // grid points in the explore
  std::uint64_t cache_hits = 0;
  bool done = false;
};

/// Bounded progress store keyed by coalescing RequestKey — keyed by KEY,
/// not corr, so every waiter of a coalesced job (and an HTTP poller with a
/// different corr) reads the same entry via RequestLog::KeyForCorr.
class ProgressBoard {
 public:
  static constexpr std::size_t kMaxEntries = 128;

  void Update(std::string_view key, const ProgressState& state);
  [[nodiscard]] std::optional<ProgressState> Get(std::string_view key) const;

 private:
  struct Entry {
    std::string key;
    ProgressState state;
    std::uint64_t seq = 0;  // for oldest-entry eviction
  };
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::vector<Entry> entries_;
};

// --------------------------------------------------------------- Forensics

/// Everything the dump writer needs, owned by the Server.
struct Forensics {
  std::string dump_dir;                  // "" = forensics disabled
  const RequestLog* requests = nullptr;  // may be null (tools without a log)
};

/// Write a forensics bundle to `<dump_dir>/b2h-forensics-<pid>-<seq>.json`
/// via an atomic rename: reason, pid, build + schema stamps, in-flight and
/// recent requests (with correlation ids), the full metrics snapshot, and
/// the flight-recorder ring as Chrome trace JSON.  Returns the written
/// path, or "" when dumping is disabled or the write failed.
std::string WriteForensicsDump(const Forensics& forensics,
                               std::string_view reason);

/// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers and a std::terminate
/// handler that write one forensics bundle for `forensics` (which must
/// outlive the process) and then re-raise with the default disposition, so
/// the exit status still reports the original fault.  Last call wins;
/// passing nullptr uninstalls dump-on-crash (dispositions stay).
void InstallCrashHandlers(const Forensics* forensics);

}  // namespace b2h::serve
