// Minimal blocking client for the b2h-serve wire protocol, shared by the
// load generator, the CI smoke, and the multi-tenant tests.  One Client is
// one connection; it is NOT thread-safe (frames would interleave) — use
// one Client per thread, which is also how the daemon meters per-connection
// state.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "support/error.hpp"
#include "support/socket.hpp"

namespace b2h::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a serving daemon.  Fails fast when the socket file is
  /// absent or nothing is listening.
  [[nodiscard]] static Result<Client> Connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one request frame and wait up to `timeout_ms` (< 0 = forever)
  /// for the response frame.
  [[nodiscard]] Status Call(std::string_view request, std::string* response,
                            int timeout_ms = -1);

  /// Send one request and collect frames until the FINAL response arrives
  /// (the frame carrying "ok"; progress frames carry "progress" instead —
  /// serve/protocol.hpp).  Each progress frame's payload is handed to
  /// `on_progress` (may be null) as it arrives; the final response lands in
  /// `*response`.  `timeout_ms` bounds each individual frame read, so a
  /// streaming explore keeps the effective timeout alive as long as the
  /// daemon keeps talking.
  [[nodiscard]] Status CallStreaming(
      std::string_view request, std::string* response,
      const std::function<void(std::string_view)>& on_progress,
      int timeout_ms = -1);

  /// Send a frame without awaiting a response (pipelining; responses are
  /// returned in request order and can be collected with Receive).
  [[nodiscard]] Status Send(std::string_view request);
  [[nodiscard]] Status Receive(std::string* response, int timeout_ms = -1);

  /// Write a raw byte sequence with NO length prefix — protocol-abuse
  /// helper for the robustness tests (truncated/garbage frames).
  [[nodiscard]] bool SendRaw(std::string_view bytes);

  void Close();

  [[nodiscard]] std::uint32_t max_frame_bytes() const {
    return max_frame_bytes_;
  }

 private:
  int fd_ = -1;
  std::uint32_t max_frame_bytes_ = support::kDefaultMaxFrameBytes;
};

}  // namespace b2h::serve
