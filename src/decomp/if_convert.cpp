// If-conversion: small, side-effect-free branch diamonds become selects.
//
// Hardware has no branch penalty but a large FSM-state penalty: a loop body
// split across blocks cannot be pipelined by the scheduler (it pipelines
// single-block self-loops).  Converting
//
//        B: condbr c, T, F            B: t...; f...; m_i = select(c, ...)
//        T: t...; br M        ==>     (T, F gone; B falls through to M)
//        F: f...; br M
//        M: m_i = phi(t_i, f_i)
//
// executes both arms speculatively — legal only when the arms are pure ALU
// code (no loads/stores/calls/divides), and worthwhile only when they are
// short.  ADPCM-style clamping kernels collapse to single-block loops and
// pipeline at II=1 after this pass.
#include <algorithm>
#include <unordered_map>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

constexpr std::size_t kMaxArmOps = 8;

/// An arm is convertible when every op can be executed speculatively and
/// cheaply: pure ALU only, no memory, no calls, no multi-cycle units.
bool ArmConvertible(const ir::Block* arm) {
  if (arm->BodySize() > kMaxArmOps) return false;
  if (!arm->Phis().empty()) return false;
  for (const ir::Instr* instr : arm->instrs) {
    if (instr->is_terminator()) {
      if (instr->op != Opcode::kBr) return false;
      continue;
    }
    switch (instr->op) {
      case Opcode::kLoad: case Opcode::kStore: case Opcode::kCall:
      case Opcode::kDivS: case Opcode::kDivU: case Opcode::kRemS:
      case Opcode::kRemU: case Opcode::kPhi:
        return false;
      default:
        break;
    }
  }
  return true;
}

/// True when `arm` is a pure forwarding arm of the diamond:
/// single pred `head`, single succ `merge`.
bool IsArmOf(const ir::Block* arm, const ir::Block* head,
             const ir::Block* merge) {
  if (arm->preds.size() != 1 || arm->preds[0] != head) return false;
  const auto succs = arm->succs();
  return succs.size() == 1 && succs[0] == merge;
}

struct Candidate {
  ir::Block* head = nullptr;
  ir::Block* taken = nullptr;      // may be null (triangle, taken==merge)
  ir::Block* fallthrough = nullptr;  // may be null (triangle)
  ir::Block* merge = nullptr;
};

/// Straighten the CFG: splice single-pred blocks into their unconditional
/// single predecessor.  Converted diamonds then collapse into one block —
/// which is what makes the enclosing loop body pipelinable.
std::size_t MergeStraightLineBlocks(ir::Function& function) {
  std::size_t merged = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    function.RecomputeCfg();
    EliminateTrivialPhis(function);  // single-pred phis become copies
    for (const auto& block : function.blocks()) {
      if (!block->has_terminator()) continue;
      ir::Instr* term = block->terminator();
      if (term->op != Opcode::kBr) continue;
      ir::Block* next = term->target0;
      if (next == block.get() || next == function.entry()) continue;
      if (next->preds.size() != 1 || !next->Phis().empty()) continue;
      // Splice: drop our Br, adopt the successor's instructions.
      block->Remove(term);
      for (ir::Instr* instr : next->instrs) {
        instr->parent = block.get();
        block->instrs.push_back(instr);
      }
      next->instrs.clear();
      // `next` is now empty and unreachable; drop it.
      function.RemoveUnreachableBlocks();
      ++merged;
      changed = true;
      break;  // block list changed; restart scan
    }
  }
  return merged;
}

}  // namespace

IfConversionStats ConvertIfs(ir::Function& function) {
  IfConversionStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    function.RecomputeCfg();
    Candidate found;
    for (const auto& block : function.blocks()) {
      if (!block->has_terminator()) continue;
      ir::Instr* term = block->terminator();
      if (term->op != Opcode::kCondBr) continue;
      ir::Block* t = term->target0;
      ir::Block* f = term->target1;
      if (t == f) continue;
      const auto t_succs = t->succs();
      const auto f_succs = f->succs();
      // Full diamond: both arms forward to the same merge.
      if (t_succs.size() == 1 && f_succs.size() == 1 &&
          t_succs[0] == f_succs[0] && IsArmOf(t, block.get(), t_succs[0]) &&
          IsArmOf(f, block.get(), f_succs[0]) && ArmConvertible(t) &&
          ArmConvertible(f) && t_succs[0]->preds.size() == 2) {
        found = {block.get(), t, f, t_succs[0]};
        break;
      }
      // Triangle: one arm forwards to the other target (the merge).
      if (t_succs.size() == 1 && t_succs[0] == f &&
          IsArmOf(t, block.get(), f) && ArmConvertible(t) &&
          f->preds.size() == 2) {
        found = {block.get(), t, nullptr, f};
        break;
      }
      if (f_succs.size() == 1 && f_succs[0] == t &&
          IsArmOf(f, block.get(), t) && ArmConvertible(f) &&
          t->preds.size() == 2) {
        found = {block.get(), nullptr, f, t};
        break;
      }
    }
    if (found.head == nullptr) break;

    ir::Instr* term = found.head->terminator();
    const Value cond = term->operands[0];
    // Hoist arm bodies into the head (speculative execution).
    const auto hoist = [&](ir::Block* arm) {
      if (arm == nullptr) return;
      std::vector<ir::Instr*> body;
      for (ir::Instr* instr : arm->instrs) {
        if (!instr->is_terminator()) body.push_back(instr);
      }
      for (ir::Instr* instr : body) {
        arm->Remove(instr);
        found.head->Append(instr);  // lands before the terminator
      }
    };
    hoist(found.taken);
    hoist(found.fallthrough);

    // Rewrite merge phis as selects in the head.
    const ir::Block* taken_pred =
        found.taken != nullptr ? found.taken : found.head;
    const std::size_t taken_index = found.merge->PredIndex(taken_pred);
    std::vector<ir::Instr*> phis = found.merge->Phis();
    std::unordered_map<const ir::Instr*, Value> replacements;
    for (ir::Instr* phi : phis) {
      Check(phi->operands.size() == 2, "if-convert: merge phi arity");
      const Value on_taken = phi->operands[taken_index];
      const Value on_fall = phi->operands[1 - taken_index];
      ir::Instr* select = function.Create(Opcode::kSelect);
      select->operands = {cond, on_taken, on_fall};
      select->width = phi->width;
      select->is_signed = phi->is_signed;
      select->src_pc = phi->src_pc;
      found.head->Append(select);
      replacements[phi] = Value::Of(select);
      found.merge->Remove(phi);
      ++stats.selects_created;
    }
    function.ReplaceAllUses(replacements);

    // Head now branches straight to the merge.
    term->op = Opcode::kBr;
    term->operands.clear();
    term->width = 0;
    term->target0 = found.merge;
    term->target1 = nullptr;

    // Profile: the head's counts flow through unchanged.
    function.RemoveUnreachableBlocks();
    EliminateTrivialPhis(function);
    function.RemoveDeadInstrs();
    MergeStraightLineBlocks(function);
    ++stats.diamonds_converted;
    changed = true;
  }
  MergeStraightLineBlocks(function);
  function.RemoveDeadInstrs();
  function.RecomputeCfg();
  return stats;
}

}  // namespace b2h::decomp
