// Named-pass pipeline management for the decompiler.
//
// Every recovery technique from the paper is a registered `Pass` with a
// stable name; pipelines are built from presets ("default",
// "is-overhead-only", "no-undo", "none"), from explicit name lists, or from
// a compact spec string ("default,-reroll-loops").  The manager times each
// pass and collects its named counters, replacing the hand-threaded
// `DecompileStats` plumbing the old hardwired pipeline used — the aggregate
// struct is still filled in for compatibility, but per-pass numbers now come
// from `DecompiledProgram::pass_runs`.
//
// `Decompile()` (pipeline.hpp) remains as a thin shim that maps the legacy
// boolean `DecompileOptions` onto a pipeline and runs it here.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "decomp/pipeline.hpp"
#include "ir/ir.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "support/error.hpp"

namespace b2h::decomp {

// PassRunStats (per-pass timing + counters) lives in pipeline.hpp so that
// DecompiledProgram can carry a vector of them.

/// A named, registered decompilation pass.  Passes are stateless: all
/// per-run data lives in the module and the stats structs, so one registered
/// instance can serve concurrent pipelines.
class Pass {
 public:
  Pass(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}
  virtual ~Pass() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

  /// Transform the module; record named counters in `run` and fold them
  /// into the legacy aggregate `stats`.
  virtual void Run(ir::Module& module, PassRunStats& run,
                   DecompileStats& stats) const = 0;

 private:
  std::string name_;
  std::string description_;
};

/// Process-wide pass registry.  The eight paper passes are registered on
/// first access; custom passes can be added at runtime.
class PassRegistry {
 public:
  /// The global registry, with built-in passes already registered.
  static PassRegistry& Global();

  /// Register a pass.  Throws InternalError on a duplicate name.
  void Register(std::unique_ptr<Pass> pass);

  [[nodiscard]] const Pass* Find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Builds and runs pass pipelines.
class PassManager {
 public:
  /// Empty pipeline (lift + final cleanup only).
  PassManager() = default;

  /// Preset pipelines:
  ///   "default"          — the full paper pipeline, in publication order
  ///   "is-overhead-only" — instruction-set overhead removal only
  ///   "no-undo"          — everything except the undo-compiler-opt passes
  ///   "none"             — empty
  /// Unknown preset names return an error.
  [[nodiscard]] static Result<PassManager> Preset(std::string_view preset);

  /// Pipeline from an explicit ordered name list.
  [[nodiscard]] static Result<PassManager> FromNames(
      const std::vector<std::string>& names);

  /// Pipeline from a compact spec: a comma-separated token list whose first
  /// token may be a preset name; "-name" removes every occurrence of that
  /// pass, a bare name appends one.  Examples:
  ///   "default"                    — the default preset
  ///   "default,-reroll-loops"      — ablation: default minus one pass
  ///   "simplify-constants,reduce-operator-sizes"
  [[nodiscard]] static Result<PassManager> FromSpec(std::string_view spec);

  /// Exact pipeline the legacy boolean options selected (compat shim).
  [[nodiscard]] static PassManager FromOptions(const DecompileOptions& options);

  /// Append one pass by name; error if unregistered.
  Status Append(std::string_view name);

  /// Remove every pipeline occurrence of `name` (per-pass disable).
  PassManager& Disable(std::string_view name);

  /// Run the IR verifier after the pipeline (default on).
  PassManager& SetVerify(bool verify) {
    verify_ = verify;
    return *this;
  }

  [[nodiscard]] const std::vector<const Pass*>& pipeline() const noexcept {
    return pipeline_;
  }

  /// Lift `binary` and run the pipeline.  The returned program shares
  /// ownership of the binary, so it can outlive the caller's handle.
  [[nodiscard]] Result<DecompiledProgram> Run(
      std::shared_ptr<const mips::SoftBinary> binary,
      const mips::ExecProfile* profile = nullptr) const;

  /// Incremental (region-scoped) decompilation for dynamic partitioning:
  /// lift ONLY the function entered at `root_entry` (plus its transitive
  /// callees, so inlining still works) and run the same pipeline over that
  /// small module.  The returned program's module has the root function as
  /// `main`; cost is proportional to the region, not the binary.
  [[nodiscard]] Result<DecompiledProgram> RunAt(
      std::shared_ptr<const mips::SoftBinary> binary,
      std::uint32_t root_entry,
      const mips::ExecProfile* profile = nullptr) const;

  /// Run the pipeline over an already-lifted module in place.
  void RunOnModule(ir::Module& module, DecompileStats& stats,
                   std::vector<PassRunStats>& pass_runs) const;

 private:
  /// Shared tail of Run/RunAt: pipeline + final cleanup + verification.
  [[nodiscard]] Result<DecompiledProgram> Finish(
      std::shared_ptr<const mips::SoftBinary> binary, ir::Module lifted) const;

  std::vector<const Pass*> pipeline_;
  bool verify_ = true;
};

}  // namespace b2h::decomp
