#include "decomp/alias.hpp"

#include <algorithm>
#include <optional>

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

constexpr std::uint32_t kDataBase = 0x1000'0000u;
constexpr std::uint32_t kStackBase = 0x7FF0'0000u;

/// Additive decomposition of an address expression: constant part plus
/// non-constant leaves (looking through adds/subs only).
struct Decomposition {
  std::int64_t const_sum = 0;
  std::vector<const ir::Instr*> leaves;
  bool ok = true;
};

void Decompose(const Value& value, Decomposition& out, int sign, int depth) {
  if (depth > 16) {
    out.ok = false;
    return;
  }
  if (value.is_const()) {
    out.const_sum += sign * static_cast<std::int64_t>(
                                static_cast<std::uint32_t>(value.imm));
    return;
  }
  const ir::Instr* def = value.def;
  if (def->op == Opcode::kAdd) {
    Decompose(def->operands[0], out, sign, depth + 1);
    Decompose(def->operands[1], out, sign, depth + 1);
    return;
  }
  if (def->op == Opcode::kSub) {
    Decompose(def->operands[0], out, sign, depth + 1);
    Decompose(def->operands[1], out, -sign, depth + 1);
    return;
  }
  out.leaves.push_back(def);
}

}  // namespace

AliasAnalysis::AliasAnalysis(
    const ir::Function& function,
    const std::map<std::string, std::uint32_t>* data_symbols)
    : function_(function) {
  if (data_symbols != nullptr) {
    for (const auto& [name, addr] : *data_symbols) {
      if (addr >= kDataBase && addr < kStackBase) {
        sorted_symbols_.emplace_back(addr, name);
      }
    }
    std::sort(sorted_symbols_.begin(), sorted_symbols_.end());
  }
  for (const auto& block : function.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op != Opcode::kLoad && instr->op != Opcode::kStore) continue;
      region_of_[instr] = ClassifyAddress(instr->operands[0]);
    }
  }
}

int AliasAnalysis::InternRegion(MemRegion region) {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].kind == region.kind && regions_[i].key == region.key) {
      return static_cast<int>(i);
    }
  }
  regions_.push_back(std::move(region));
  return static_cast<int>(regions_.size()) - 1;
}

int AliasAnalysis::ClassifyAddress(const Value& addr) {
  Decomposition decomp;
  Decompose(addr, decomp, 1, 0);
  if (!decomp.ok) return -1;

  const auto base = static_cast<std::uint64_t>(decomp.const_sum);
  // Global array: constant base inside the data segment.
  if (decomp.const_sum > 0 && base >= kDataBase && base < kStackBase) {
    MemRegion region;
    region.kind = MemRegion::Kind::kGlobal;
    region.key = base;
    // Resolve to the containing data symbol when available.
    if (!sorted_symbols_.empty()) {
      auto it = std::upper_bound(
          sorted_symbols_.begin(), sorted_symbols_.end(),
          std::make_pair(static_cast<std::uint32_t>(base),
                         std::string("\xff")));
      if (it != sorted_symbols_.begin()) {
        --it;
        region.key = it->first;
        region.name = it->second;
      }
    }
    return InternRegion(std::move(region));
  }
  // Stack access: base derived from the sp input.
  for (const ir::Instr* leaf : decomp.leaves) {
    if (leaf->op == Opcode::kInput && leaf->input_index == 29) {
      MemRegion region;
      region.kind = MemRegion::Kind::kStack;
      region.key = 0;
      region.name = "<stack>";
      return InternRegion(std::move(region));
    }
  }
  // Parameter-relative: a single non-constant leaf that is a function input
  // or call result acts as the array base (arrays passed as arguments).
  if (decomp.leaves.size() == 1 &&
      (decomp.leaves[0]->op == Opcode::kInput ||
       decomp.leaves[0]->op == Opcode::kCall)) {
    MemRegion region;
    region.kind = MemRegion::Kind::kParam;
    region.key = static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(decomp.leaves[0]));
    region.name = "<param>";
    return InternRegion(std::move(region));
  }
  return -1;
}

int AliasAnalysis::RegionIdOf(const ir::Instr* instr) const {
  const auto it = region_of_.find(instr);
  return it == region_of_.end() ? -1 : it->second;
}

std::set<int> AliasAnalysis::RegionsIn(const ir::Loop& loop) const {
  std::set<int> out;
  for (const ir::Block* block : loop.blocks) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op != Opcode::kLoad && instr->op != Opcode::kStore) continue;
      out.insert(RegionIdOf(instr));
    }
  }
  return out;
}

std::set<int> AliasAnalysis::AllRegions() const {
  std::set<int> out;
  for (const auto& [instr, region] : region_of_) out.insert(region);
  return out;
}

bool AliasAnalysis::MayAlias(const ir::Instr* a, const ir::Instr* b) const {
  const int ra = RegionIdOf(a);
  const int rb = RegionIdOf(b);
  if (ra < 0 || rb < 0) return true;  // unknown: conservative
  return ra == rb;
}

}  // namespace b2h::decomp
