// Loop rerolling (paper §2).
//
// "Loop unrolling can obscure high-level information such as memory access
//  patterns and resource requirements ... We use loop rerolling to identify
//  unrolled loops and then roll the loops back into a representation
//  similar to their original representation in high-level code."
//
// The pass targets single-block self-loops (header == latch) whose body
// consists of U isomorphic sections followed by a small tail (induction
// update + bound compare).  Matching is strict and position-wise — the pass
// runs immediately after lifting, before constant folding, so compiler
// unrolled sections are still textually isomorphic:
//   - opcodes and side data must match position-by-position;
//   - constant operands may differ across sections in arithmetic
//     progression (c0, c0+d, c0+2d, ...), but a non-zero progression is
//     accepted only where the instruction provably depends affinely on the
//     induction variable with coefficient a and d == a * (S/U) — this is
//     the signature of substituting i -> i + j*(S/U), and rejects bodies
//     whose constants merely happen to form a progression;
//   - a use of a loop phi in section 0 must correspond in section j to the
//     "j-th version" of that phi (the value section j-1 produced at the
//     same position where the phi's final latch value is produced).
//
// On a match, sections 1..U-1 are deleted, the induction step S becomes
// S/U, phi latch operands are rewired into section 0, and profile counts
// are rescaled (the rerolled loop iterates U times more often).
#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

struct LoopShape {
  ir::Block* block = nullptr;
  std::vector<ir::Instr*> phis;
  std::vector<ir::Instr*> body;     // non-phi, non-terminator, in order
  ir::Instr* terminator = nullptr;
  ir::Instr* compare = nullptr;     // bound comparison feeding the branch
  ir::Instr* induction_add = nullptr;  // i_next = add(i_phi, S)
  ir::Instr* induction_phi = nullptr;
  std::int32_t step = 0;            // S
  std::size_t latch_index = 0;      // index of the back edge in preds
  std::size_t tail_len = 2;         // instructions after the last section
};

/// Extract the canonical rotated-loop shape, or nullopt.
std::optional<LoopShape> MatchShape(ir::Block* block) {
  LoopShape shape;
  shape.block = block;
  if (!block->has_terminator()) return std::nullopt;
  shape.terminator = block->terminator();
  if (shape.terminator->op != Opcode::kCondBr) return std::nullopt;
  if (shape.terminator->target0 != block &&
      shape.terminator->target1 != block) {
    return std::nullopt;  // not a self loop
  }
  if (block->preds.size() != 2) return std::nullopt;
  shape.latch_index = block->PredIndex(block);
  shape.phis = block->Phis();
  for (ir::Instr* instr : block->instrs) {
    if (instr->op == Opcode::kPhi || instr == shape.terminator) continue;
    shape.body.push_back(instr);
  }
  if (shape.body.size() < 4) return std::nullopt;

  // Tail: [induction add, compare] or [induction add, compare, ne(cmp,0)]
  // — the latter is the lifted form of MIPS `slt $at, ...; bne $at, $zero`.
  const Value cond = shape.terminator->operands[0];
  if (!cond.is_instr() || cond.def != shape.body.back()) return std::nullopt;
  shape.compare = cond.def;
  shape.tail_len = 2;
  if ((shape.compare->op == Opcode::kNe ||
       shape.compare->op == Opcode::kEq) &&
      shape.compare->operands[1].is_const_value(0) &&
      shape.compare->operands[0].is_instr()) {
    ir::Instr* inner = shape.compare->operands[0].def;
    if (shape.body.size() >= 3 &&
        inner == shape.body[shape.body.size() - 2] &&
        ir::IsComparison(inner->op)) {
      shape.compare = inner;
      shape.tail_len = 3;
    }
  }
  if (shape.body.size() < shape.tail_len + 1) return std::nullopt;
  ir::Instr* add = shape.body[shape.body.size() - shape.tail_len];
  if (add->op != Opcode::kAdd || !add->operands[1].is_const()) {
    return std::nullopt;
  }
  const Value base = add->operands[0];
  if (!base.is_instr() || base.def->op != Opcode::kPhi ||
      base.def->parent != block) {
    return std::nullopt;
  }
  // The add must be the phi's latch value (i_next).
  ir::Instr* phi = base.def;
  if (!(phi->operands[shape.latch_index] == Value::Of(add))) {
    return std::nullopt;
  }
  // The compare must use i_next (rotated do-while bound check).
  const bool compare_uses_next =
      (shape.compare->operands[0] == Value::Of(add)) ||
      (shape.compare->operands.size() > 1 &&
       shape.compare->operands[1] == Value::Of(add));
  if (!ir::IsComparison(shape.compare->op) || !compare_uses_next) {
    return std::nullopt;
  }
  shape.induction_add = add;
  shape.induction_phi = phi;
  shape.step = add->operands[1].imm;
  return shape;
}

/// Affine coefficient of `value` with respect to the induction phi, looking
/// only through in-block definitions.  nullopt = not provably affine.
std::optional<std::int64_t> AffineCoeff(
    const Value& value, const ir::Instr* induction_phi,
    const ir::Block* block, int depth) {
  if (depth > 16) return std::nullopt;
  if (value.is_const()) return 0;
  const ir::Instr* def = value.def;
  if (def == induction_phi) return 1;
  if (def->parent != block || def->op == Opcode::kPhi) {
    // Loop-invariant values (defined outside) have coefficient 0; other
    // loop phis (accumulators) are not affine in i.
    return def->parent != block ? std::optional<std::int64_t>(0)
                                : std::nullopt;
  }
  switch (def->op) {
    case Opcode::kAdd: {
      const auto a = AffineCoeff(def->operands[0], induction_phi, block,
                                 depth + 1);
      const auto b = AffineCoeff(def->operands[1], induction_phi, block,
                                 depth + 1);
      if (a && b) return *a + *b;
      return std::nullopt;
    }
    case Opcode::kSub: {
      const auto a = AffineCoeff(def->operands[0], induction_phi, block,
                                 depth + 1);
      const auto b = AffineCoeff(def->operands[1], induction_phi, block,
                                 depth + 1);
      if (a && b) return *a - *b;
      return std::nullopt;
    }
    case Opcode::kShl:
      if (def->operands[1].is_const()) {
        const auto a = AffineCoeff(def->operands[0], induction_phi, block,
                                   depth + 1);
        if (a) return *a << (def->operands[1].imm & 31);
      }
      return std::nullopt;
    case Opcode::kMul:
      if (def->operands[1].is_const()) {
        const auto a = AffineCoeff(def->operands[0], induction_phi, block,
                                   depth + 1);
        if (a) return *a * def->operands[1].imm;
      }
      return std::nullopt;
    case Opcode::kLoad:
      return 0;  // a loaded value is never a function of i (delta must be 0)
    default:
      return std::nullopt;
  }
}

/// One candidate factoring attempt for a given U.
class RerollAttempt {
 public:
  RerollAttempt(const LoopShape& shape, std::size_t factor)
      : shape_(shape), factor_(factor) {}

  bool Match() {
    const std::size_t body_ops = shape_.body.size() - shape_.tail_len;
    if (factor_ < 2 || body_ops % factor_ != 0) return false;
    if (shape_.step % static_cast<std::int32_t>(factor_) != 0 ||
        shape_.step == 0) {
      return false;
    }
    section_len_ = body_ops / factor_;
    if (section_len_ == 0) return false;
    new_step_ = shape_.step / static_cast<std::int32_t>(factor_);

    // Index instructions by section.
    const auto at = [&](std::size_t section, std::size_t k) {
      return shape_.body[section * section_len_ + k];
    };

    // First find, for every loop phi, the position of its latch value in
    // the final section (the "version position").  The induction phi is
    // handled separately via the tail add.
    for (ir::Instr* phi : shape_.phis) {
      if (phi == shape_.induction_phi) continue;
      const Value latch = phi->operands[shape_.latch_index];
      if (latch == Value::Of(phi)) continue;  // loop-invariant phi
      if (!latch.is_instr()) return false;
      // Locate in last section.
      bool found = false;
      for (std::size_t k = 0; k < section_len_; ++k) {
        if (at(factor_ - 1, k) == latch.def) {
          version_pos_[phi] = k;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }

    // Position-wise isomorphism with constant progressions.
    deltas_.assign(section_len_, {});
    for (std::size_t j = 1; j < factor_; ++j) {
      for (std::size_t k = 0; k < section_len_; ++k) {
        if (!MatchInstr(at(0, k), at(j, k), j, k)) return false;
      }
    }

    // Verify non-zero deltas are justified: d == affine_coeff * new_step.
    for (std::size_t k = 0; k < section_len_; ++k) {
      for (const auto& [idx, d] : deltas_[k]) {
        if (d == 0) continue;
        ir::Instr* instr = at(0, k);
        // Affine coefficient of the instruction's non-constant operand.
        std::optional<std::int64_t> coeff;
        for (std::size_t oi = 0; oi < instr->operands.size(); ++oi) {
          if (oi == idx) continue;
          coeff = AffineCoeff(instr->operands[oi], shape_.induction_phi,
                              shape_.block, 0);
          break;
        }
        if (!coeff || *coeff * new_step_ != d) return false;
        // Only additive positions can carry induction offsets.
        if (instr->op != Opcode::kAdd && instr->op != Opcode::kSub) {
          return false;
        }
      }
    }
    return true;
  }

  /// Apply the rewrite (call only after Match() returned true).
  void Apply(ir::Function& function) {
    const auto at = [&](std::size_t section, std::size_t k) {
      return shape_.body[section * section_len_ + k];
    };
    // Rewire phi latch operands into section 0.
    for (ir::Instr* phi : shape_.phis) {
      if (phi == shape_.induction_phi) continue;
      const auto it = version_pos_.find(phi);
      if (it == version_pos_.end()) continue;
      phi->operands[shape_.latch_index] = Value::Of(at(0, it->second));
    }
    // Induction step S -> S/U.
    shape_.induction_add->operands[1] = Value::Const(new_step_);

    // Values that escape the loop (exit-block phis reading the final
    // iteration's state) reference instructions in later sections; after
    // rerolling, the final iteration's value at position k is produced by
    // section 0's instruction at position k.
    std::unordered_map<const ir::Instr*, Value> escapes;
    for (std::size_t j = 1; j < factor_; ++j) {
      for (std::size_t k = 0; k < section_len_; ++k) {
        escapes[at(j, k)] = Value::Of(at(0, k));
      }
    }
    function.ReplaceAllUses(escapes);

    // Delete sections 1..U-1.
    std::unordered_set<const ir::Instr*> doomed;
    for (std::size_t j = 1; j < factor_; ++j) {
      for (std::size_t k = 0; k < section_len_; ++k) {
        doomed.insert(at(j, k));
      }
    }
    auto& instrs = shape_.block->instrs;
    instrs.erase(std::remove_if(instrs.begin(), instrs.end(),
                                [&](const ir::Instr* instr) {
                                  return doomed.count(instr) != 0;
                                }),
                 instrs.end());

    // Rescale profile annotations: the rerolled loop runs U iterations for
    // every original iteration, with the same number of loop entries/exits.
    ir::Block* block = shape_.block;
    if (block->exec_count > 0) {
      const std::uint64_t back_is_taken =
          shape_.terminator->target0 == block ? 1 : 0;
      const std::uint64_t old_back =
          back_is_taken != 0 ? block->taken_count : block->not_taken_count;
      const std::uint64_t entries = block->exec_count > old_back
                                        ? block->exec_count - old_back
                                        : 1;
      block->exec_count *= factor_;
      const std::uint64_t new_back = block->exec_count - entries;
      if (back_is_taken != 0) {
        block->taken_count = new_back;
      } else {
        block->not_taken_count = new_back;
      }
    }
    function.RemoveDeadInstrs();
    function.RecomputeCfg();
  }

  [[nodiscard]] std::size_t removed_ops() const {
    return (factor_ - 1) * section_len_;
  }

 private:
  /// Match instruction `b` (section j, position k) against `a` (section 0).
  bool MatchInstr(ir::Instr* a, ir::Instr* b, std::size_t j, std::size_t k) {
    if (a->op != b->op || a->mem_bytes != b->mem_bytes ||
        a->mem_signed != b->mem_signed || a->call_target != b->call_target ||
        a->operands.size() != b->operands.size()) {
      return false;
    }
    if (a->op == Opcode::kPhi || a->op == Opcode::kCall) return false;
    for (std::size_t oi = 0; oi < a->operands.size(); ++oi) {
      const Value& x = a->operands[oi];
      const Value& y = b->operands[oi];
      if (x.is_const()) {
        if (!y.is_const()) return false;
        const std::int64_t diff =
            static_cast<std::int64_t>(y.imm) - static_cast<std::int64_t>(x.imm);
        auto& slot = deltas_[k];
        const auto it = slot.find(oi);
        if (it == slot.end()) {
          if (j != 1) {
            // First time we see this position must be section 1.
            if (diff != 0) return false;
            slot[oi] = 0;
          } else {
            if (diff % static_cast<std::int64_t>(j) != 0) return false;
            slot[oi] = diff;
          }
        } else if (diff != it->second * static_cast<std::int64_t>(j)) {
          return false;
        }
        continue;
      }
      if (!x.is_instr() || !y.is_instr()) return false;
      // In-section structural correspondence.
      const auto pos_x = PositionInSection(x.def, 0);
      if (pos_x) {
        const auto pos_y = PositionInSection(y.def, j);
        if (!pos_y || *pos_y != *pos_x) return false;
        continue;
      }
      // Loop-phi version chains: section j uses the value section j-1
      // produced at the phi's version position.
      if (x.def->op == Opcode::kPhi && x.def->parent == shape_.block &&
          x.def != shape_.induction_phi) {
        const auto vp = version_pos_.find(x.def);
        if (vp == version_pos_.end()) return false;
        const ir::Instr* expected =
            shape_.body[(j - 1) * section_len_ + vp->second];
        if (y.def != expected) return false;
        continue;
      }
      // Everything else must be loop-invariant and identical.
      if (!(x == y)) return false;
    }
    return true;
  }

  std::optional<std::size_t> PositionInSection(const ir::Instr* instr,
                                               std::size_t section) const {
    for (std::size_t k = 0; k < section_len_; ++k) {
      if (shape_.body[section * section_len_ + k] == instr) return k;
    }
    return std::nullopt;
  }

  const LoopShape& shape_;
  std::size_t factor_;
  std::size_t section_len_ = 0;
  std::int32_t new_step_ = 0;
  // Per position k: operand index -> per-section constant delta.
  std::vector<std::map<std::size_t, std::int64_t>> deltas_;
  std::unordered_map<const ir::Instr*, std::size_t> version_pos_;
};

}  // namespace

namespace {

/// Fold register-move idioms (`or rd, rs, $zero` lifts to kOr(x, 0)) so the
/// loop shape matcher sees through them.  Deliberately does NOT fold
/// kAdd(x, 0): those are the section-0 induction offsets unrolled code
/// carries, and the matcher keys on them.
std::size_t FoldRegisterMoves(ir::Function& function) {
  std::unordered_map<const ir::Instr*, ir::Value> replacements;
  for (const auto& block : function.blocks()) {
    for (ir::Instr* instr : block->instrs) {
      if (instr->op == Opcode::kOr) {
        if (instr->operands[0].is_const() && instr->operands[1].is_const()) {
          // `li` via lui+ori.
          replacements[instr] = ir::Value::Const(
              instr->operands[0].imm | instr->operands[1].imm);
        } else if (instr->operands[1].is_const_value(0)) {
          replacements[instr] = instr->operands[0];
        } else if (instr->operands[0].is_const_value(0)) {
          replacements[instr] = instr->operands[1];
        }
      } else if (instr->op == Opcode::kAdd &&
                 instr->operands[0].is_const() &&
                 instr->operands[1].is_const()) {
        // `li` via addiu $rd, $zero, imm.
        replacements[instr] = ir::Value::Const(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(instr->operands[0].imm) +
            static_cast<std::uint32_t>(instr->operands[1].imm)));
      }
    }
  }
  if (replacements.empty()) return 0;
  function.ReplaceAllUses(replacements);
  for (const auto& block : function.blocks()) {
    auto& instrs = block->instrs;
    instrs.erase(std::remove_if(instrs.begin(), instrs.end(),
                                [&](const ir::Instr* instr) {
                                  return replacements.count(instr) != 0;
                                }),
                 instrs.end());
  }
  return replacements.size();
}

}  // namespace

RerollStats RerollLoops(ir::Function& function) {
  RerollStats stats;
  FoldRegisterMoves(function);
  function.RecomputeCfg();

  // Collect candidate self-loop blocks first (rewrites invalidate analyses).
  std::vector<ir::Block*> candidates;
  for (const auto& block : function.blocks()) {
    for (const ir::Block* succ : block->succs()) {
      if (succ == block.get()) {
        candidates.push_back(block.get());
        break;
      }
    }
  }

  for (ir::Block* block : candidates) {
    const auto shape = MatchShape(block);
    if (!shape) continue;
    for (std::size_t factor : {8u, 4u, 2u}) {
      RerollAttempt attempt(*shape, factor);
      if (attempt.Match()) {
        attempt.Apply(function);
        ++stats.loops_rerolled;
        stats.unroll_factor = factor;
        stats.ops_removed += attempt.removed_ops();
        break;
      }
    }
  }
  if (stats.loops_rerolled > 0) {
    EliminateTrivialPhis(function);
    function.RemoveDeadInstrs();
    function.RecomputeCfg();
  }
  return stats;
}

}  // namespace b2h::decomp
