// Binary parsing, CFG recovery, and lifting to SSA IR.
//
// Implements the front half of the paper's decompilation flow (§2):
//   "Initially, binary parsing converts the software binary into an
//    instruction set independent representation.  Next, CDFG creation builds
//    a control/data flow graph for the application."
//
// Function discovery starts at the binary entry point and follows `jal`
// targets transitively (no symbol table needed).  Within each function, CFG
// recovery discovers basic-block leaders by following branch targets.
// An unresolvable indirect jump (`jr` to a non-return-address register, or
// `jalr`) aborts recovery with ErrorKind::kIndirectJump — exactly the
// failure mode the paper reports for two EEMBC benchmarks.
//
// Lifting produces SSA directly: machine registers are treated as variables,
// per-block symbolic state maps registers to IR values, and block-entry
// reads become phi placeholders resolved once the CFG is complete (trivial
// phis are then removed).
#pragma once

#include "ir/ir.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "support/error.hpp"

namespace b2h::decomp {

struct LiftOptions {
  /// Optional profile; when present, blocks and branch edges are annotated
  /// with execution counts (consumed by the partitioner).
  const mips::ExecProfile* profile = nullptr;
};

/// Decompile `binary` into an SSA module.  Fails with kIndirectJump /
/// kMalformedBinary when CDFG recovery is impossible.
[[nodiscard]] Result<ir::Module> Lift(const mips::SoftBinary& binary,
                                      const LiftOptions& options = {});

/// Remove phis whose operands are all identical (or self-references).
/// Returns number of phis removed.  Exposed for reuse by stack-op removal.
std::size_t EliminateTrivialPhis(ir::Function& function);

}  // namespace b2h::decomp
