// Binary parsing, CFG recovery, and lifting to SSA IR.
//
// Implements the front half of the paper's decompilation flow (§2):
//   "Initially, binary parsing converts the software binary into an
//    instruction set independent representation.  Next, CDFG creation builds
//    a control/data flow graph for the application."
//
// Function discovery starts at the binary entry point and follows `jal`
// targets transitively (no symbol table needed).  Within each function, CFG
// recovery discovers basic-block leaders by following branch targets.
// An unresolvable indirect jump (`jr` to a non-return-address register, or
// `jalr`) aborts recovery with ErrorKind::kIndirectJump — exactly the
// failure mode the paper reports for two EEMBC benchmarks.
//
// Lifting produces SSA directly: machine registers are treated as variables,
// per-block symbolic state maps registers to IR values, and block-entry
// reads become phi placeholders resolved once the CFG is complete (trivial
// phis are then removed).
#pragma once

#include "ir/ir.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "support/error.hpp"

namespace b2h::decomp {

struct LiftOptions {
  /// Optional profile; when present, blocks and branch edges are annotated
  /// with execution counts (consumed by the partitioner).
  const mips::ExecProfile* profile = nullptr;
};

/// Decompile `binary` into an SSA module.  Fails with kIndirectJump /
/// kMalformedBinary when CDFG recovery is impossible.
[[nodiscard]] Result<ir::Module> Lift(const mips::SoftBinary& binary,
                                      const LiftOptions& options = {});

/// Region-scoped lift for incremental (dynamic) decompilation: lift only the
/// function entered at `root_entry` plus its transitive callees, leaving the
/// rest of the binary untouched.  The returned module's `main` is the root
/// function.  Callees are included so the inlining pass can keep
/// helper-calling loops synthesizable, exactly as in a whole-binary lift.
[[nodiscard]] Result<ir::Module> LiftAt(const mips::SoftBinary& binary,
                                        std::uint32_t root_entry,
                                        const LiftOptions& options = {});

/// Static function-entry discovery without lifting: the binary entry point
/// plus every direct-call (`jal`) target found by scanning the text segment.
/// Sorted ascending.  A dynamic partitioner uses this to map a hot PC to the
/// entry of its enclosing function (greatest entry <= pc) without paying for
/// a whole-binary CFG recovery.
[[nodiscard]] std::vector<std::uint32_t> FunctionEntries(
    const mips::SoftBinary& binary);

/// Remove phis whose operands are all identical (or self-references).
/// Returns number of phis removed.  Exposed for reuse by stack-op removal.
std::size_t EliminateTrivialPhis(ir::Function& function);

}  // namespace b2h::decomp
