#include "decomp/pass_manager.hpp"

#include <functional>
#include <mutex>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"
#include "ir/verifier.hpp"
#include "obs/obs.hpp"

namespace b2h::decomp {

namespace {

/// Adapter turning a stats-producing callable into a registered Pass.
class LambdaPass final : public Pass {
 public:
  using Body = std::function<void(ir::Module&, PassRunStats&, DecompileStats&)>;

  LambdaPass(std::string name, std::string description, Body body)
      : Pass(std::move(name), std::move(description)), body_(std::move(body)) {}

  void Run(ir::Module& module, PassRunStats& run,
           DecompileStats& stats) const override {
    body_(module, run, stats);
  }

 private:
  Body body_;
};

void RegisterBuiltins(PassRegistry& registry) {
  auto add = [&registry](const char* name, const char* description,
                         LambdaPass::Body body) {
    registry.Register(
        std::make_unique<LambdaPass>(name, description, std::move(body)));
  };

  add("reroll-loops", "roll compiler-unrolled loop bodies back up",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const RerollStats reroll = RerollLoops(*function);
          run.counters["loops_rerolled"] += reroll.loops_rerolled;
          run.counters["ops_removed"] += reroll.ops_removed;
          stats.loops_rerolled += reroll.loops_rerolled;
          stats.reroll_ops_removed += reroll.ops_removed;
        }
      });

  add("simplify-constants",
      "constant folding / copy propagation / move-idiom removal to fixpoint",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const std::size_t simplified = SimplifyConstants(*function);
          run.counters["simplified"] += simplified;
          stats.constants_simplified += simplified;
        }
      });

  add("remove-stack-ops", "promote stack slots to SSA values",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const StackRemovalStats stack = RemoveStackOperations(*function);
          run.counters["slots_promoted"] += stack.slots_promoted;
          run.counters["loads_removed"] += stack.loads_removed;
          run.counters["stores_removed"] += stack.stores_removed;
          stats.stack_slots_promoted += stack.slots_promoted;
          stats.stack_ops_removed +=
              stack.loads_removed + stack.stores_removed;
        }
      });

  add("inline-small-functions",
      "inline small leaf callees so helper-calling loops stay synthesizable",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        const InlineStats inlined = InlineSmallFunctions(module);
        run.counters["calls_inlined"] += inlined.calls_inlined;
        stats.calls_inlined += inlined.calls_inlined;
      });

  add("convert-ifs", "turn short branch diamonds/triangles into selects",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const IfConversionStats ifs = ConvertIfs(*function);
          run.counters["diamonds_converted"] += ifs.diamonds_converted;
          run.counters["selects_created"] += ifs.selects_created;
          stats.ifs_converted += ifs.diamonds_converted;
        }
      });

  add("promote-strength",
      "collapse shift/add chains back into multiplications",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const StrengthPromotionStats promoted = PromoteStrength(*function);
          run.counters["muls_recovered"] += promoted.muls_recovered;
          run.counters["ops_collapsed"] += promoted.ops_collapsed;
          stats.muls_recovered += promoted.muls_recovered;
        }
      });

  add("reduce-strength",
      "mul/div/rem by powers of two become shifts/masks for synthesis",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const StrengthReductionStats reduced = ReduceStrength(*function);
          run.counters["muls_to_shifts"] += reduced.muls_to_shifts;
          run.counters["divs_to_shifts"] += reduced.divs_to_shifts;
          run.counters["rems_to_masks"] += reduced.rems_to_masks;
          stats.strength_reduced += reduced.muls_to_shifts +
                                    reduced.divs_to_shifts +
                                    reduced.rems_to_masks;
        }
      });

  add("reduce-operator-sizes",
      "annotate every instruction with its significant result width",
      [](ir::Module& module, PassRunStats& run, DecompileStats& stats) {
        for (const auto& function : module.functions) {
          const SizeReductionStats sizes = ReduceOperatorSizes(*function);
          run.counters["narrowed"] += sizes.narrowed;
          run.counters["bits_saved"] += sizes.total_bits_saved;
          stats.instrs_narrowed += sizes.narrowed;
          stats.bits_saved += sizes.total_bits_saved;
        }
      });
}

/// The paper pipeline.  The interleaved "simplify-constants" cleanups are
/// where the old hardwired code conditionally re-ran constant propagation;
/// the pass runs to fixpoint, so running it unconditionally is equivalent.
const std::vector<std::string>& DefaultNames() {
  static const std::vector<std::string> names = {
      "reroll-loops",
      "simplify-constants",
      "remove-stack-ops",
      "simplify-constants",
      "inline-small-functions",
      "simplify-constants",
      "convert-ifs",
      "simplify-constants",
      "promote-strength",
      "reduce-strength",
      "reduce-operator-sizes",
  };
  return names;
}

/// Instruction-set overhead removal only (paper §2, first family).
const std::vector<std::string>& IsOverheadOnlyNames() {
  static const std::vector<std::string> names = {
      "simplify-constants", "remove-stack-ops",      "simplify-constants",
      "reduce-strength",    "reduce-operator-sizes",
  };
  return names;
}

/// Everything except the undo-compiler-optimization family (reroll,
/// strength promotion, inlining — paper §2, second family).
const std::vector<std::string>& NoUndoNames() {
  static const std::vector<std::string> names = {
      "simplify-constants", "remove-stack-ops", "simplify-constants",
      "convert-ifs",        "simplify-constants", "reduce-strength",
      "reduce-operator-sizes",
  };
  return names;
}

}  // namespace

namespace {

// Guards the registry's pass list: runtime registration is advertised and
// Toolchain batches read the registry from worker threads.  Passes are
// never removed, so a Pass* stays valid once returned.
std::mutex& PassRegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

PassRegistry& PassRegistry::Global() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void PassRegistry::Register(std::unique_ptr<Pass> pass) {
  Check(pass != nullptr, "PassRegistry::Register: null pass");
  const std::lock_guard<std::mutex> lock(PassRegistryMutex());
  for (const auto& existing : passes_) {
    if (existing->name() == pass->name()) {
      throw InternalError("duplicate pass name: " + pass->name());
    }
  }
  passes_.push_back(std::move(pass));
}

const Pass* PassRegistry::Find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(PassRegistryMutex());
  for (const auto& pass : passes_) {
    if (pass->name() == name) return pass.get();
  }
  return nullptr;
}

std::vector<std::string> PassRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(PassRegistryMutex());
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

Result<PassManager> PassManager::Preset(std::string_view preset) {
  if (preset == "default") return FromNames(DefaultNames());
  if (preset == "is-overhead-only") return FromNames(IsOverheadOnlyNames());
  if (preset == "no-undo") return FromNames(NoUndoNames());
  if (preset == "none") return PassManager();
  return Status::Error(ErrorKind::kUnsupported,
                       "unknown pipeline preset: " + std::string(preset));
}

Result<PassManager> PassManager::FromNames(
    const std::vector<std::string>& names) {
  PassManager manager;
  for (const std::string& name : names) {
    if (Status status = manager.Append(name); !status.ok()) return status;
  }
  return manager;
}

Result<PassManager> PassManager::FromSpec(std::string_view spec) {
  PassManager manager;
  bool first = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view token = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    // Trim surrounding spaces.
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token.empty()) {
      first = false;
      continue;
    }
    if (token.front() == '-') {
      const std::string_view name = token.substr(1);
      // A typo'd disable would otherwise silently run the full pipeline —
      // fatal for ablation results.
      if (PassRegistry::Global().Find(name) == nullptr) {
        return Status::Error(ErrorKind::kUnsupported,
                             "unknown pass in disable: " + std::string(name));
      }
      manager.Disable(name);
    } else if (first && PassRegistry::Global().Find(token) == nullptr) {
      auto preset = Preset(token);
      if (!preset.ok()) return preset.status();
      manager = std::move(preset).take();
    } else {
      if (Status status = manager.Append(token); !status.ok()) return status;
    }
    first = false;
  }
  return manager;
}

PassManager PassManager::FromOptions(const DecompileOptions& options) {
  PassManager manager;
  auto append = [&manager](bool enabled, const char* name) {
    if (!enabled) return;
    const Status status = manager.Append(name);
    Check(status.ok(), "built-in pass missing from registry");
  };
  append(options.reroll_loops, "reroll-loops");
  append(options.simplify_constants, "simplify-constants");
  append(options.remove_stack_ops, "remove-stack-ops");
  append(options.remove_stack_ops && options.simplify_constants,
         "simplify-constants");
  append(options.inline_small_functions, "inline-small-functions");
  append(options.inline_small_functions && options.simplify_constants,
         "simplify-constants");
  append(options.convert_ifs, "convert-ifs");
  append(options.convert_ifs && options.simplify_constants,
         "simplify-constants");
  append(options.promote_strength, "promote-strength");
  append(options.reduce_strength, "reduce-strength");
  append(options.reduce_operator_sizes, "reduce-operator-sizes");
  manager.SetVerify(options.verify);
  return manager;
}

Status PassManager::Append(std::string_view name) {
  const Pass* pass = PassRegistry::Global().Find(name);
  if (pass == nullptr) {
    return Status::Error(ErrorKind::kUnsupported,
                         "unknown pass: " + std::string(name));
  }
  pipeline_.push_back(pass);
  return Status::Ok();
}

PassManager& PassManager::Disable(std::string_view name) {
  std::erase_if(pipeline_,
                [name](const Pass* pass) { return pass->name() == name; });
  return *this;
}

void PassManager::RunOnModule(ir::Module& module, DecompileStats& stats,
                              std::vector<PassRunStats>& pass_runs) const {
  obs::ScopedSpan pipeline_span("decomp.pipeline", "decomp");
  for (const Pass* pass : pipeline_) {
    PassRunStats run;
    run.pass = pass->name();
    obs::ScopedSpan span(pass->name(), "decomp");
    const obs::Stopwatch watch;
    pass->Run(module, run, stats);
    run.millis = watch.Millis();
    pass_runs.push_back(std::move(run));
  }
  pipeline_span.Arg("passes", static_cast<std::uint64_t>(pipeline_.size()));
}

Result<DecompiledProgram> PassManager::Run(
    std::shared_ptr<const mips::SoftBinary> binary,
    const mips::ExecProfile* profile) const {
  Check(binary != nullptr, "PassManager::Run: null binary");
  LiftOptions lift_options;
  lift_options.profile = profile;
  auto lifted = Lift(*binary, lift_options);
  if (!lifted.ok()) return lifted.status();
  return Finish(std::move(binary), std::move(lifted).take());
}

Result<DecompiledProgram> PassManager::RunAt(
    std::shared_ptr<const mips::SoftBinary> binary, std::uint32_t root_entry,
    const mips::ExecProfile* profile) const {
  Check(binary != nullptr, "PassManager::RunAt: null binary");
  LiftOptions lift_options;
  lift_options.profile = profile;
  auto lifted = LiftAt(*binary, root_entry, lift_options);
  if (!lifted.ok()) return lifted.status();
  return Finish(std::move(binary), std::move(lifted).take());
}

Result<DecompiledProgram> PassManager::Finish(
    std::shared_ptr<const mips::SoftBinary> binary, ir::Module lifted) const {
  DecompiledProgram program;
  program.module = std::move(lifted);
  program.binary = std::move(binary);

  for (const auto& function : program.module.functions) {
    program.stats.lifted_instrs += function->NumInstrs();
  }

  RunOnModule(program.module, program.stats, program.pass_runs);

  // Final cleanup: dead-instruction elimination + CFG recompute, always.
  for (const auto& function : program.module.functions) {
    function->RemoveDeadInstrs();
    function->RecomputeCfg();
    program.stats.final_instrs += function->NumInstrs();
  }

  if (verify_) {
    if (Status status = ir::Verify(program.module); !status.ok()) {
      return status;
    }
  }
  return program;
}

}  // namespace b2h::decomp
