// Operator size reduction (paper §2).
//
// Software instruction sets force every operation to the register width
// (32 bits), but most embedded kernels manipulate far narrower data.  This
// pass computes, per instruction, the number of significant result bits via
// two cooperating analyses:
//   forward  — value-range widths (what the producer can generate), and
//   backward — demanded bits (what consumers actually observe; the classic
//              example is an accumulation feeding a byte store).
// The final width is min(forward, demanded).  Widths are semantic claims:
// the IR interpreter masks every result to its width, so an unsound
// narrowing shows up as a co-simulation mismatch.  The synthesis library
// prices functional units by operand width, which is where the paper's area
// saving comes from.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "decomp/passes.hpp"
#include "support/bits.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

/// Forward fact: value fits in `width` bits, zero-extended when !is_signed
/// (i.e. 0 <= v < 2^width), sign-extended otherwise.
struct Fact {
  unsigned width = 32;
  bool is_signed = true;
};

Fact ConstFact(std::int32_t value) {
  if (value >= 0) return {UnsignedWidth(static_cast<std::uint32_t>(value)),
                          false};
  return {SignedWidth(value), true};
}

/// Width when reinterpreted as a signed (two's complement) quantity.
unsigned AsSignedWidth(const Fact& fact) {
  return fact.is_signed ? fact.width : std::min(32u, fact.width + 1);
}

Fact Join(const Fact& a, const Fact& b) {
  if (!a.is_signed && !b.is_signed) {
    return {std::max(a.width, b.width), false};
  }
  return {std::min(32u, std::max(AsSignedWidth(a), AsSignedWidth(b))), true};
}

class ForwardWidths {
 public:
  explicit ForwardWidths(const ir::Function& function) : function_(function) {
    Run();
  }

  [[nodiscard]] Fact Of(const Value& value) const {
    if (value.is_const()) return ConstFact(value.imm);
    const auto it = facts_.find(value.def);
    return it == facts_.end() ? Fact{} : it->second;
  }

 private:
  void Run() {
    // Optimistic initialization; widths only grow, so iteration converges.
    for (const auto& block : function_.blocks()) {
      for (const ir::Instr* instr : block->instrs) {
        if (instr->width == 0) continue;
        facts_[instr] = Fact{1, false};
      }
    }
    bool changed = true;
    int guard = 0;
    while (changed) {
      Check(++guard < 200, "size reduction: forward analysis diverged");
      changed = false;
      for (const auto& block : function_.blocks()) {
        for (const ir::Instr* instr : block->instrs) {
          if (instr->width == 0) continue;
          const Fact next = Transfer(*instr);
          Fact& current = facts_[instr];
          // Monotone join with the current fact.
          const Fact merged = Join(current, next);
          if (merged.width != current.width ||
              merged.is_signed != current.is_signed) {
            current = merged;
            changed = true;
          }
        }
      }
    }
  }

  Fact Transfer(const ir::Instr& instr) const {
    const auto op_fact = [&](std::size_t i) { return Of(instr.operands[i]); };
    switch (instr.op) {
      case Opcode::kInput:
      case Opcode::kUndef:
      case Opcode::kCall:
      case Opcode::kMulHiS:
        return {32, true};
      case Opcode::kMulHiU:
        return {32, true};
      case Opcode::kConst:
        return ConstFact(instr.imm);
      case Opcode::kLoad:
        if (instr.mem_bytes == 4) return {32, true};
        return {static_cast<unsigned>(instr.mem_bytes) * 8u,
                instr.mem_signed};
      case Opcode::kAdd: {
        const Fact a = op_fact(0), b = op_fact(1);
        if (!a.is_signed && !b.is_signed) {
          const unsigned w = std::max(a.width, b.width) + 1;
          if (w <= 32) return {w, false};
          return {32, true};
        }
        const unsigned w = std::max(AsSignedWidth(a), AsSignedWidth(b)) + 1;
        return {std::min(32u, w), true};
      }
      case Opcode::kSub: {
        const unsigned w =
            std::max(AsSignedWidth(op_fact(0)), AsSignedWidth(op_fact(1))) + 1;
        return {std::min(32u, w), true};
      }
      case Opcode::kMul: {
        const Fact a = op_fact(0), b = op_fact(1);
        if (!a.is_signed && !b.is_signed) {
          const unsigned w = a.width + b.width;
          if (w <= 32) return {w, false};
          return {32, true};
        }
        const unsigned w = AsSignedWidth(a) + AsSignedWidth(b);
        return {std::min(32u, w), true};
      }
      case Opcode::kAnd: {
        const Fact a = op_fact(0), b = op_fact(1);
        unsigned w = 32;
        if (!a.is_signed) w = std::min(w, a.width);
        if (!b.is_signed) w = std::min(w, b.width);
        if (w < 32) return {w, false};
        return {std::max(AsSignedWidth(a), AsSignedWidth(b)), true};
      }
      case Opcode::kOr:
      case Opcode::kXor: {
        const Fact a = op_fact(0), b = op_fact(1);
        if (!a.is_signed && !b.is_signed) {
          return {std::max(a.width, b.width), false};
        }
        return {std::min(32u, std::max(AsSignedWidth(a), AsSignedWidth(b))),
                true};
      }
      case Opcode::kNor:
        return {32, true};
      case Opcode::kShl: {
        if (instr.operands[1].is_const()) {
          const unsigned sh =
              static_cast<unsigned>(instr.operands[1].imm) & 31u;
          const Fact a = op_fact(0);
          const unsigned w = a.width + sh;
          if (w <= 32) return {w, a.is_signed};
        }
        return {32, true};
      }
      case Opcode::kShrL: {
        if (instr.operands[1].is_const()) {
          const unsigned sh =
              static_cast<unsigned>(instr.operands[1].imm) & 31u;
          const Fact a = op_fact(0);
          if (!a.is_signed) return {std::max(1u, a.width - std::min(a.width - 1, sh)), false};
          if (sh > 0) return {32 - sh, false};
        }
        return {32, true};
      }
      case Opcode::kShrA: {
        if (instr.operands[1].is_const()) {
          const unsigned sh =
              static_cast<unsigned>(instr.operands[1].imm) & 31u;
          const Fact a = op_fact(0);
          const unsigned w = a.width > sh ? a.width - sh : 1;
          return {std::max(1u, w), a.is_signed};
        }
        return {32, true};
      }
      case Opcode::kDivU: {
        const Fact a = op_fact(0);
        if (!a.is_signed) return {a.width, false};
        return {32, true};
      }
      case Opcode::kRemU: {
        const Fact a = op_fact(0), b = op_fact(1);
        if (!b.is_signed) return {b.width, false};
        if (!a.is_signed) return {a.width, false};
        return {32, true};
      }
      case Opcode::kDivS:
      case Opcode::kRemS:
        return {32, true};
      case Opcode::kSelect:
        return Join(op_fact(1), op_fact(2));
      case Opcode::kSExt:
        return {instr.ext_from, true};
      case Opcode::kZExt:
        return {instr.ext_from, false};
      case Opcode::kTrunc:
        return {instr.width, instr.is_signed};
      case Opcode::kPhi: {
        Fact joined{1, false};
        for (std::size_t i = 0; i < instr.operands.size(); ++i) {
          joined = Join(joined, Of(instr.operands[i]));
        }
        return joined;
      }
      default:
        if (ir::IsComparison(instr.op)) return {1, false};
        return {32, true};
    }
  }

  const ir::Function& function_;
  std::unordered_map<const ir::Instr*, Fact> facts_;
};

/// Backward demanded-bits: how many low result bits any consumer observes.
class DemandedBits {
 public:
  explicit DemandedBits(const ir::Function& function) : function_(function) {
    Run();
  }

  [[nodiscard]] unsigned Of(const ir::Instr* instr) const {
    const auto it = demanded_.find(instr);
    return it == demanded_.end() ? 32u : it->second;
  }

 private:
  void Run() {
    for (const auto& block : function_.blocks()) {
      for (const ir::Instr* instr : block->instrs) demanded_[instr] = 0;
    }
    bool changed = true;
    int guard = 0;
    while (changed) {
      Check(++guard < 200, "size reduction: demanded analysis diverged");
      changed = false;
      for (const auto& block : function_.blocks()) {
        for (const ir::Instr* user : block->instrs) {
          for (std::size_t i = 0; i < user->operands.size(); ++i) {
            const Value& operand = user->operands[i];
            if (!operand.is_instr()) continue;
            const unsigned demand = DemandOn(*user, i);
            unsigned& current = demanded_[operand.def];
            if (demand > current) {
              current = demand;
              changed = true;
            }
          }
        }
      }
    }
  }

  /// Bits `user` demands of its operand `index`.
  unsigned DemandOn(const ir::Instr& user, std::size_t index) const {
    const unsigned d = std::max(1u, Of(&user));
    switch (user.op) {
      case Opcode::kStore:
        return index == 1 ? static_cast<unsigned>(user.mem_bytes) * 8u : 32u;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
        // Low d bits of the result depend only on low d bits of operands.
        return d;
      case Opcode::kAnd: {
        const Value& other = user.operands[1 - index];
        if (other.is_const()) {
          return std::min(
              d, UnsignedWidth(static_cast<std::uint32_t>(other.imm)));
        }
        return d;
      }
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kNor:
        return d;
      case Opcode::kShl:
        if (index == 1) return 5;
        if (user.operands[1].is_const()) {
          const unsigned sh = static_cast<unsigned>(user.operands[1].imm) & 31u;
          return d > sh ? d - sh : 1;
        }
        return 32;
      case Opcode::kShrL:
      case Opcode::kShrA:
        if (index == 1) return 5;
        if (user.operands[1].is_const()) {
          const unsigned sh = static_cast<unsigned>(user.operands[1].imm) & 31u;
          return std::min(32u, d + sh);
        }
        return 32;
      case Opcode::kSExt:
      case Opcode::kZExt:
        return std::min(static_cast<unsigned>(user.ext_from), d);
      case Opcode::kTrunc:
        return std::min(static_cast<unsigned>(user.width), d);
      case Opcode::kSelect:
        return index == 0 ? 1u : d;
      case Opcode::kPhi:
        return d;
      case Opcode::kCondBr:
        return 1;
      default:
        return 32;  // comparisons, division, addresses, calls, ret
    }
  }

  const ir::Function& function_;
  std::unordered_map<const ir::Instr*, unsigned> demanded_;
};

}  // namespace

SizeReductionStats ReduceOperatorSizes(ir::Function& function) {
  SizeReductionStats stats;
  const ForwardWidths forward(function);
  const DemandedBits demanded(function);

  for (const auto& block : function.blocks()) {
    for (ir::Instr* instr : block->instrs) {
      if (instr->width == 0 || ir::IsComparison(instr->op)) continue;
      const Fact fact = forward.Of(Value::Of(instr));
      const unsigned demand = std::max(1u, demanded.Of(instr));
      const unsigned width = std::min(fact.width, demand);
      if (width < instr->width) {
        stats.total_bits_saved += instr->width - width;
        instr->width = static_cast<std::uint8_t>(width);
        instr->is_signed = fact.is_signed;
        ++stats.narrowed;
      } else if (fact.width <= instr->width) {
        instr->is_signed = fact.is_signed;
      }
    }
  }
  return stats;
}

}  // namespace b2h::decomp
