// End-to-end decompilation pipeline: binary -> optimized, annotated CDFG.
//
// Pass order (rationale):
//   1. Lift                 — CFG recovery + SSA construction
//   2. RerollLoops          — needs textually isomorphic sections, so it
//                             runs before any folding
//   3. SimplifyConstants    — IS-overhead removal (move idioms, folding)
//   4. RemoveStackOperations
//   5. SimplifyConstants    — cleanup enabled by promotion
//   6. InlineSmallFunctions — keeps helper-calling loops synthesizable
//   7. PromoteStrength      — shift/add chains -> mul (undo compiler opt)
//   8. ReduceStrength       — mul/div by 2^k -> shift/mask (for synthesis)
//   9. ReduceOperatorSizes  — width annotations for the area/delay model
//  10. final DCE + IR verification
//
// Every pass can be disabled individually (the ablation benchmark measures
// each one's contribution to synthesis quality).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "decomp/alias.hpp"
#include "decomp/passes.hpp"
#include "decomp/structure.hpp"
#include "ir/ir.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "support/error.hpp"

namespace b2h::decomp {

struct DecompileOptions {
  const mips::ExecProfile* profile = nullptr;
  bool reroll_loops = true;
  bool simplify_constants = true;
  bool remove_stack_ops = true;
  bool inline_small_functions = true;
  bool convert_ifs = true;
  bool promote_strength = true;
  bool reduce_strength = true;
  bool reduce_operator_sizes = true;
  bool verify = true;  ///< run the IR verifier after the pipeline
};

/// Aggregated pass statistics for reporting and the ablation benches.
struct DecompileStats {
  std::size_t constants_simplified = 0;
  std::size_t stack_slots_promoted = 0;
  std::size_t stack_ops_removed = 0;
  std::size_t loops_rerolled = 0;
  std::size_t reroll_ops_removed = 0;
  std::size_t muls_recovered = 0;
  std::size_t strength_reduced = 0;
  std::size_t instrs_narrowed = 0;
  std::size_t bits_saved = 0;
  std::size_t calls_inlined = 0;
  std::size_t ifs_converted = 0;
  std::size_t lifted_instrs = 0;
  std::size_t final_instrs = 0;
};

/// Wall time and named counters for one executed pass instance
/// (collected by the PassManager, see pass_manager.hpp).
struct PassRunStats {
  std::string pass;
  double millis = 0.0;
  std::map<std::string, std::size_t> counters;

  [[nodiscard]] std::size_t Counter(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0u : it->second;
  }
};

/// A decompiled program with its analyses.  Shares ownership of the binary
/// it was decompiled from, so the program can outlive the caller's handle
/// (the old non-owning pointer dangled whenever the binary was a stack
/// object that went out of scope before the program).
struct DecompiledProgram {
  ir::Module module;
  DecompileStats stats;
  std::vector<PassRunStats> pass_runs;  ///< per-pass timing + counters
  std::shared_ptr<const mips::SoftBinary> binary;

  /// Per-function recovered control structure (reporting).
  [[nodiscard]] StructureInfo StructureOf(const ir::Function& f) const {
    return RecoverStructure(f);
  }
};

/// Run the full decompilation pipeline.  Fails (kIndirectJump /
/// kMalformedBinary) exactly when CDFG recovery is impossible.
///
/// Compatibility shim over the PassManager (pass_manager.hpp): the boolean
/// options select the same pipeline the old hardwired code ran.  The
/// returned program shares ownership of `binary`.
[[nodiscard]] Result<DecompiledProgram> Decompile(
    std::shared_ptr<const mips::SoftBinary> binary,
    const DecompileOptions& options = {});

/// Reference overload: copies `binary` into shared ownership (the old
/// non-owning capture is gone — see DecompiledProgram::binary).
[[nodiscard]] Result<DecompiledProgram> Decompile(
    const mips::SoftBinary& binary, const DecompileOptions& options = {});

}  // namespace b2h::decomp
