// Memory region / alias analysis.
//
// Paper §3, step two: "we use alias information to find regions of code that
// access the same memory locations as the loops in the hardware partition."
// At the binary level an array is identified by the constant base address
// appearing in its access expressions; when the binary carries data symbols
// (our assembler records them) bases are resolved to the containing symbol
// so that a[0] and a[i] land in the same region.
//
// The analysis also feeds behavioral synthesis: memory accesses in provably
// different regions need no dependence edge, which is what lets the
// scheduler overlap loads from one array with stores to another.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"
#include "ir/loops.hpp"

namespace b2h::decomp {

struct MemRegion {
  enum class Kind : std::uint8_t { kGlobal, kParam, kStack, kUnknown };
  Kind kind = Kind::kUnknown;
  std::uint64_t key = 0;   ///< base address / defining instr id
  std::string name;        ///< symbol name when known
};

class AliasAnalysis {
 public:
  /// `data_symbols` (optional): label -> address map from the binary.
  AliasAnalysis(const ir::Function& function,
                const std::map<std::string, std::uint32_t>* data_symbols);

  [[nodiscard]] const std::vector<MemRegion>& regions() const {
    return regions_;
  }
  /// Region index of a load/store, or -1 when unclassifiable.
  [[nodiscard]] int RegionIdOf(const ir::Instr* instr) const;

  /// Region ids touched by any load/store in `loop`.
  [[nodiscard]] std::set<int> RegionsIn(const ir::Loop& loop) const;
  /// Region ids touched anywhere in the function.
  [[nodiscard]] std::set<int> AllRegions() const;

  /// Conservative: may the two memory operations access the same location?
  [[nodiscard]] bool MayAlias(const ir::Instr* a, const ir::Instr* b) const;

 private:
  int ClassifyAddress(const ir::Value& addr);
  int InternRegion(MemRegion region);

  const ir::Function& function_;
  std::vector<std::pair<std::uint32_t, std::string>> sorted_symbols_;
  std::vector<MemRegion> regions_;
  std::unordered_map<const ir::Instr*, int> region_of_;
};

}  // namespace b2h::decomp
