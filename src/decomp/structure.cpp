#include "decomp/structure.hpp"

#include <map>
#include <set>
#include <sstream>

#include "ir/dominators.hpp"
#include "ir/loops.hpp"

namespace b2h::decomp {
namespace {

/// Immediate post-dominator sets via simple iterative dataflow (CFGs here
/// are small; the set-based formulation keeps the code obvious).
class PostDominators {
 public:
  explicit PostDominators(const ir::Function& function) {
    int n = 0;
    for (const auto& block : function.blocks()) {
      index_[block.get()] = n++;
      blocks_.push_back(block.get());
    }
    // pdom(b) = {b} ∪ ∩_{s∈succ(b)} pdom(s);   exits: pdom = {b}.
    std::vector<std::set<int>> pdom(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (blocks_[static_cast<std::size_t>(i)]->succs().empty()) {
        pdom[static_cast<std::size_t>(i)] = {i};
      } else {
        for (int j = 0; j < n; ++j) pdom[static_cast<std::size_t>(i)].insert(j);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = n - 1; i >= 0; --i) {
        const ir::Block* block = blocks_[static_cast<std::size_t>(i)];
        const auto succs = block->succs();
        if (succs.empty()) continue;
        std::set<int> meet = pdom[static_cast<std::size_t>(index_[succs[0]])];
        for (std::size_t s = 1; s < succs.size(); ++s) {
          const auto& other = pdom[static_cast<std::size_t>(index_[succs[s]])];
          std::set<int> next;
          for (int x : meet) {
            if (other.count(x) != 0) next.insert(x);
          }
          meet = std::move(next);
        }
        meet.insert(i);
        if (meet != pdom[static_cast<std::size_t>(i)]) {
          pdom[static_cast<std::size_t>(i)] = std::move(meet);
          changed = true;
        }
      }
    }
    pdom_ = std::move(pdom);
  }

  /// True when `a` post-dominates `b`.
  [[nodiscard]] bool PostDominates(const ir::Block* a,
                                   const ir::Block* b) const {
    return pdom_[static_cast<std::size_t>(index_.at(b))].count(
               index_.at(a)) != 0;
  }

  /// Nearest common post-dominator of two blocks, or nullptr.
  [[nodiscard]] const ir::Block* Join(const ir::Block* a,
                                      const ir::Block* b) const {
    const auto& pa = pdom_[static_cast<std::size_t>(index_.at(a))];
    const auto& pb = pdom_[static_cast<std::size_t>(index_.at(b))];
    // Smallest set member common to both, by set size heuristic: pick the
    // common post-dominator with the largest pdom set intersection...
    // simpler: the common post-dominator whose own pdom set is largest is
    // the nearest (it post-dominates the fewest others).  Use minimal set.
    const ir::Block* best = nullptr;
    std::size_t best_size = SIZE_MAX;
    for (int x : pa) {
      if (pb.count(x) == 0) continue;
      const auto size = pdom_[static_cast<std::size_t>(x)].size();
      if (size < best_size) {
        best_size = size;
        best = blocks_[static_cast<std::size_t>(x)];
      }
    }
    return best;
  }

 private:
  std::map<const ir::Block*, int> index_;
  std::vector<const ir::Block*> blocks_;
  std::vector<std::set<int>> pdom_;
};

}  // namespace

StructureInfo RecoverStructure(const ir::Function& function) {
  StructureInfo info;
  info.total_blocks = function.blocks().size();

  const ir::DominatorTree dom(function);
  const ir::LoopForest loops(function, dom);
  info.loops = loops.loops().size();
  const PostDominators pdom(function);

  std::ostringstream pseudo;
  pseudo << function.name() << " {\n";

  for (const ir::Block* block : dom.ReversePostOrder()) {
    const ir::Loop* loop_here = nullptr;
    for (const auto& loop : loops.loops()) {
      if (loop->header == block) {
        loop_here = loop.get();
        break;
      }
    }
    const ir::Loop* innermost = loops.LoopFor(block);
    const int depth = innermost != nullptr ? innermost->depth : 0;
    const std::string indent(static_cast<std::size_t>(depth + 1) * 2, ' ');
    if (loop_here != nullptr) {
      pseudo << indent << "loop " << block->name << " ("
             << loop_here->blocks.size() << " blocks";
      if (loop_here->header_count > 0) {
        pseudo << ", ~" << static_cast<std::uint64_t>(
                               loop_here->AverageTripCount() + 0.5)
               << " iters";
      }
      pseudo << ")\n";
    }
    if (!block->has_terminator()) continue;
    const ir::Instr* term = block->terminator();
    if (term->op != ir::Opcode::kCondBr) continue;
    // Skip loop exit branches (the latch / header tests).
    const ir::Loop* loop = loops.LoopFor(block);
    if (loop != nullptr &&
        (term->target0 == loop->header || term->target1 == loop->header)) {
      continue;
    }
    const ir::Block* t0 = term->target0;
    const ir::Block* t1 = term->target1;
    const ir::Block* join = pdom.Join(t0, t1);
    if (join == t0 || join == t1) {
      ++info.ifs;
      pseudo << indent << "if " << block->name << " then "
             << (join == t1 ? t0->name : t1->name) << "\n";
    } else if (join != nullptr) {
      ++info.if_elses;
      pseudo << indent << "if " << block->name << " then " << t0->name
             << " else " << t1->name << " join " << join->name << "\n";
    } else {
      ++info.unstructured_branches;
      pseudo << indent << "branch " << block->name << " (unstructured)\n";
    }
  }
  pseudo << "}\n";
  info.pseudo = pseudo.str();
  return info;
}

}  // namespace b2h::decomp
