// Small-function inlining.
//
// The paper's kernels are loops; when a loop body calls a small helper
// (abs, min, saturate, ...) the call would make the region unsynthesizable.
// Inlining the callee keeps such loops eligible for hardware.  Only small
// leaf functions (no calls, no stack traffic left after stack-op removal)
// are inlined, so this cannot blow up the CDFG.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

constexpr std::size_t kMaxInlineOps = 80;
constexpr std::size_t kMaxInlineBlocks = 8;

bool IsLeaf(const ir::Function& function) {
  for (const auto& block : function.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == Opcode::kCall) return false;
      // Stack traffic left after promotion (sp input used by memory ops)
      // makes frames overlap after inlining; skip such callees.
      if (instr->op == Opcode::kInput && instr->input_index == 29) {
        return false;
      }
    }
  }
  return true;
}

/// Inline one call site.  Returns the block that execution continues in.
void InlineCall(ir::Function& caller, ir::Block* block, ir::Instr* call,
                const ir::Function& callee) {
  // Split the caller block at the call.
  ir::Block* cont = caller.CreateBlock(block->name + "_ret", call->src_pc);
  auto& instrs = block->instrs;
  const auto call_it = std::find(instrs.begin(), instrs.end(), call);
  Check(call_it != instrs.end(), "InlineCall: call not in block");
  // Move everything after the call into the continuation block; the call
  // itself stays (deleted at the end once its uses are rewritten).
  for (auto it = call_it + 1; it != instrs.end(); ++it) {
    (*it)->parent = cont;
    cont->instrs.push_back(*it);
  }
  instrs.erase(call_it + 1, instrs.end());

  // Clone callee blocks and instructions.
  std::unordered_map<const ir::Block*, ir::Block*> block_map;
  std::unordered_map<const ir::Instr*, ir::Instr*> instr_map;
  for (const auto& cb : callee.blocks()) {
    block_map[cb.get()] = caller.CreateBlock(
        callee.name() + "_" + cb->name, cb->start_pc);
  }
  // Return values collected for the merge phi.
  std::vector<std::pair<ir::Block*, Value>> returns;

  const auto map_value = [&](const Value& value) -> Value {
    if (!value.is_instr()) return value;
    const auto it = instr_map.find(value.def);
    if (it == instr_map.end()) {
      throw InternalError(std::string("InlineCall: unmapped operand op=") +
                          ir::OpcodeName(value.def->op) +
                          " id=" + std::to_string(value.def->id) +
                          " parent=" +
                          (value.def->parent != nullptr
                               ? value.def->parent->name
                               : std::string("<none>")));
    }
    return Value::Of(it->second);
  };

  for (const auto& cb : callee.blocks()) {
    ir::Block* nb = block_map[cb.get()];
    for (const ir::Instr* ci : cb->instrs) {
      if (ci->op == Opcode::kInput) {
        // Map callee inputs to call operands (a0..a3 = 0..3, sp = 4).
        Value replacement;
        if (ci->input_index >= 4 && ci->input_index <= 7) {
          replacement = call->operands[ci->input_index - 4];
        } else if (ci->input_index == 29) {
          replacement = call->operands[4];
        } else {
          ir::Instr* undef = caller.Create(Opcode::kUndef);
          nb->Append(undef);
          replacement = Value::Of(undef);
        }
        // Record mapping via a synthetic entry (no new instruction unless
        // undef); store in instr_map through a shim below.
        ir::Instr* shim = caller.Create(Opcode::kOr);
        shim->operands = {replacement, Value::Const(0)};
        shim->src_pc = ci->src_pc;
        nb->Append(shim);
        instr_map[ci] = shim;
        continue;
      }
      if (ci->op == Opcode::kRet) {
        // The returned value may live in a block cloned later (block order
        // is address-based, but previous inlining appends split blocks at
        // the end); defer the mapping until every block is cloned.
        returns.emplace_back(nb, ci->operands.empty()
                                     ? Value::Const(0)
                                     : ci->operands[0]);
        ir::Instr* br = caller.Create(Opcode::kBr);
        br->target0 = cont;
        nb->Append(br);
        continue;
      }
      ir::Instr* ni = caller.Create(ci->op);
      ni->width = ci->width;
      ni->is_signed = ci->is_signed;
      ni->mem_bytes = ci->mem_bytes;
      ni->mem_signed = ci->mem_signed;
      ni->ext_from = ci->ext_from;
      ni->input_index = ci->input_index;
      ni->call_target = ci->call_target;
      ni->imm = ci->imm;
      ni->src_pc = ci->src_pc;
      ni->target0 = ci->target0;  // remapped to cloned blocks below
      ni->target1 = ci->target1;
      for (const Value& operand : ci->operands) {
        // Phi operands may reference not-yet-cloned instrs; fill later.
        if (operand.is_instr() && instr_map.count(operand.def) == 0) {
          ni->operands.push_back(Value::None());
          continue;
        }
        ni->operands.push_back(map_value(operand));
      }
      if (ci->op == Opcode::kPhi) {
        nb->PrependPhi(ni);
      } else {
        nb->Append(ni);
      }
      instr_map[ci] = ni;
    }
  }
  // Fix forward references (phi operands and any cross-block forward uses).
  for (const auto& [ci, ni] : instr_map) {
    for (std::size_t i = 0; i < ni->operands.size(); ++i) {
      if (ni->operands[i].is_none()) {
        ni->operands[i] = map_value(ci->operands[i]);
      }
    }
  }
  // Resolve the deferred return values.
  for (auto& [rb, rv] : returns) rv = map_value(rv);
  // Map branch targets.
  for (const auto& cb : callee.blocks()) {
    ir::Block* nb = block_map[cb.get()];
    if (!nb->has_terminator()) continue;
    ir::Instr* term = nb->terminator();
    if (term->target0 != nullptr && block_map.count(term->target0) != 0) {
      term->target0 = block_map[term->target0];
    }
    if (term->target1 != nullptr && block_map.count(term->target1) != 0) {
      term->target1 = block_map[term->target1];
    }
  }
  // Profile annotations: scale callee counts into the caller by call count.
  // (Approximation: the call instruction's own block count.)
  for (const auto& cb : callee.blocks()) {
    block_map[cb.get()]->exec_count = cb->exec_count;
    block_map[cb.get()]->taken_count = cb->taken_count;
    block_map[cb.get()]->not_taken_count = cb->not_taken_count;
  }

  // Branch from the call block into the inlined entry.
  ir::Instr* enter = caller.Create(Opcode::kBr);
  enter->target0 = block_map[callee.entry()];
  block->Append(enter);
  cont->exec_count = block->exec_count;

  // Merge return value: phi in the continuation block.
  Check(!returns.empty(), "InlineCall: callee has no returns");
  Value result;
  if (returns.size() == 1) {
    result = returns.front().second;
  } else {
    ir::Instr* phi = caller.Create(Opcode::kPhi);
    // Operand order must match cont->preds; RecomputeCfg will order preds
    // by block iteration order, so build after recompute below.  Use a
    // placeholder now.
    cont->PrependPhi(phi);
    caller.RecomputeCfg();
    std::vector<Value> operands(cont->preds.size(), Value::Const(0));
    for (std::size_t i = 0; i < cont->preds.size(); ++i) {
      for (const auto& [rb, rv] : returns) {
        if (cont->preds[i] == rb) operands[i] = rv;
      }
    }
    phi->operands = std::move(operands);
    result = Value::Of(phi);
  }

  // Replace the call's uses with the return value and delete the call.
  std::unordered_map<const ir::Instr*, Value> replacement{{call, result}};
  caller.ReplaceAllUses(replacement);
  block->Remove(call);
  caller.RecomputeCfg();
}

}  // namespace

InlineStats InlineSmallFunctions(ir::Module& module) {
  InlineStats stats;
  // Leaf callees with a single call site always inline (that is simply
  // whole-program flattening: no code growth); multi-site callees inline
  // only under the size caps.
  std::unordered_map<std::uint32_t, unsigned> call_sites;
  for (const auto& function : module.functions) {
    for (const auto& block : function->blocks()) {
      for (const ir::Instr* instr : block->instrs) {
        if (instr->op == Opcode::kCall) ++call_sites[instr->call_target];
      }
    }
  }
  // Outer fixpoint: inlining a helper into a kernel makes the kernel a
  // leaf, which can unlock inlining the kernel into main on a later round.
  bool module_changed = true;
  while (module_changed) {
    module_changed = false;
    for (auto& function : module.functions) {
      bool changed = true;
      bool function_changed = false;
      while (changed) {
        changed = false;
        for (const auto& block : function->blocks()) {
          for (ir::Instr* instr : block->instrs) {
            if (instr->op != Opcode::kCall) continue;
            const ir::Function* callee =
                module.FindByEntry(instr->call_target);
            if (callee == nullptr || callee == function.get()) continue;
            if (!IsLeaf(*callee)) continue;
            const bool single_site = call_sites[instr->call_target] == 1;
            if (!single_site &&
                (callee->CountOps() > kMaxInlineOps ||
                 callee->blocks().size() > kMaxInlineBlocks)) {
              continue;
            }
            InlineCall(*function, block.get(), instr, *callee);
            ++stats.calls_inlined;
            changed = true;
            function_changed = true;
            module_changed = true;
            break;  // block structure changed; restart scan
          }
          if (changed) break;
        }
      }
      if (function_changed) {
        // Clean up immediately: the deleted call was often the only user
        // of this function's sp input, and IsLeaf must see the post-DCE
        // state for the next round to flatten transitively.
        EliminateTrivialPhis(*function);
        function->RemoveDeadInstrs();
        function->RecomputeCfg();
      }
    }
  }
  return stats;
}

}  // namespace b2h::decomp
