// Decompilation optimization passes (paper §2).
//
// Two families:
//   Instruction-set overhead removal — constant propagation / folding
//   (move-via-add-zero idioms), operator size reduction, strength reduction,
//   and stack operation removal.
//   Undoing compiler optimizations — strength promotion (shift/add chains
//   back into multiplications) and loop rerolling (roll unrolled loops back
//   up), plus function inlining so kernels containing small helper calls can
//   still be synthesized.
//
// Every pass is semantics-preserving; the three-way co-simulation suite
// (MIPS sim / IR interpreter / RTL sim) checks this across the benchmark
// suite at every compiler optimization level.
#pragma once

#include <cstddef>

#include "ir/ir.hpp"

namespace b2h::decomp {

/// Constant folding, algebraic identity simplification, copy propagation,
/// and constant branch folding, to a fixpoint.  Removes the register-move
/// idioms (`or rd, rs, $zero`, `addiu rd, rs, 0`) the instruction set forced
/// on the compiler.  Returns the number of instructions simplified away.
std::size_t SimplifyConstants(ir::Function& function);

struct StackRemovalStats {
  std::size_t slots_promoted = 0;
  std::size_t loads_removed = 0;
  std::size_t stores_removed = 0;
  bool aborted_unsafe = false;  ///< escape/aliasing made promotion unsafe
};

/// Promote stack slots (sp-relative spill/local accesses) to SSA values.
/// Safe only when every memory access is provably stack-slot or provably
/// not-stack; otherwise the pass is a no-op with aborted_unsafe set.
StackRemovalStats RemoveStackOperations(ir::Function& function);

struct SizeReductionStats {
  std::size_t narrowed = 0;       ///< instructions with width < 32 after
  std::size_t total_bits_saved = 0;
};

/// Operator size reduction: forward value-width analysis combined with
/// backward demanded-bits analysis; annotates every instruction with the
/// number of significant result bits (consumed by the synthesis area/delay
/// model).
SizeReductionStats ReduceOperatorSizes(ir::Function& function);

struct StrengthReductionStats {
  std::size_t muls_to_shifts = 0;
  std::size_t divs_to_shifts = 0;
  std::size_t rems_to_masks = 0;
};

/// Synthesis-oriented strength reduction: multiply/divide/remainder by
/// powers of two become shifts/masks (shifts by constants are free wiring in
/// hardware; dividers are enormous).  Signed division is only reduced when
/// the operand is provably non-negative, so run after ReduceOperatorSizes.
StrengthReductionStats ReduceStrength(ir::Function& function);

struct StrengthPromotionStats {
  std::size_t muls_recovered = 0;
  std::size_t ops_collapsed = 0;
};

/// Strength promotion: recognize shift/add/sub trees computing c*x (the
/// output of the software compiler's multiply strength reduction) and
/// collapse them back into a single multiplication so the synthesis tool can
/// choose the best hardware implementation.
StrengthPromotionStats PromoteStrength(ir::Function& function);

struct RerollStats {
  std::size_t loops_rerolled = 0;
  std::size_t unroll_factor = 0;  ///< factor of the last rerolled loop
  std::size_t ops_removed = 0;
};

/// Loop rerolling: detect loop bodies consisting of U isomorphic sections
/// produced by compiler loop unrolling and roll them back into a single
/// section with the induction step divided by U.
RerollStats RerollLoops(ir::Function& function);

struct InlineStats {
  std::size_t calls_inlined = 0;
};

struct IfConversionStats {
  std::size_t diamonds_converted = 0;
  std::size_t selects_created = 0;
};

/// If-conversion: side-effect-free branch diamonds/triangles with short
/// arms become selects, merging their blocks.  Loop bodies that collapse to
/// a single block become eligible for pipelining in synthesis.
IfConversionStats ConvertIfs(ir::Function& function);

/// Inline small leaf callees into their call sites so loops containing
/// helper calls remain synthesizable.  `module` provides callee lookup.
InlineStats InlineSmallFunctions(ir::Module& module);

}  // namespace b2h::decomp
