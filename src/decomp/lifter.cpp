#include "decomp/lifter.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "mips/isa.hpp"
#include "support/bits.hpp"

namespace b2h::decomp {
namespace {

using mips::Instr;
using mips::Op;
using mips::SoftBinary;

constexpr unsigned kNumLocs = 34;  // 32 GPRs + HI + LO
constexpr unsigned kHi = 32;
constexpr unsigned kLo = 33;

/// Machine-level basic block discovered during CFG recovery.
struct MBlock {
  std::uint32_t start = 0;  // first instruction address
  std::uint32_t end = 0;    // one past last instruction address
  std::vector<std::uint32_t> succs;  // successor leader addresses
};

/// Machine-level CFG of one function.
struct MachineCfg {
  std::uint32_t entry = 0;
  std::map<std::uint32_t, MBlock> blocks;  // keyed by leader address
  std::set<std::uint32_t> call_targets;    // jal destinations seen
};

std::string Hex(std::uint32_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

/// Discover the machine CFG of the function entered at `entry`.
Result<MachineCfg> RecoverCfg(const SoftBinary& binary, std::uint32_t entry) {
  MachineCfg cfg;
  cfg.entry = entry;

  // Pass 1: walk reachable instructions, record leaders and flow edges.
  std::set<std::uint32_t> visited;
  std::set<std::uint32_t> leaders{entry};
  std::deque<std::uint32_t> work{entry};
  // flow[pc] = successor addresses of the instruction at pc (empty for ret).
  std::map<std::uint32_t, std::vector<std::uint32_t>> flow;

  while (!work.empty()) {
    std::uint32_t pc = work.front();
    work.pop_front();
    if (visited.count(pc) != 0) continue;
    visited.insert(pc);
    if (!binary.ContainsText(pc)) {
      return Status::Error(ErrorKind::kMalformedBinary,
                           "control flows outside text at " + Hex(pc));
    }
    const auto decoded = mips::Decode(binary.WordAt(pc));
    if (!decoded) {
      return Status::Error(ErrorKind::kMalformedBinary,
                           "undecodable instruction at " + Hex(pc));
    }
    const Instr& in = *decoded;
    std::vector<std::uint32_t>& succs = flow[pc];
    if (mips::IsBranch(in.op)) {
      const std::uint32_t target = mips::BranchTarget(pc, in);
      // `beq $0,$0` (assembler pseudo `b`) is unconditional.
      if (in.op == Op::kBeq && in.rs == 0 && in.rt == 0) {
        succs = {target};
      } else if (in.op == Op::kBne && in.rs == in.rt) {
        succs = {pc + 4};
      } else {
        succs = {target, pc + 4};
      }
      leaders.insert(succs.begin(), succs.end());
    } else if (in.op == Op::kJ) {
      const std::uint32_t target = mips::JumpTarget(pc, in);
      succs = {target};
      leaders.insert(target);
    } else if (in.op == Op::kJal) {
      // A call: control continues after the call in this function.
      cfg.call_targets.insert(mips::JumpTarget(pc, in));
      succs = {pc + 4};
    } else if (in.op == Op::kJr) {
      if (in.rs == mips::kRa) {
        succs = {};  // return
      } else {
        // The paper: "CDFG recovery ... failed for two EEMBC examples
        // because of indirect jumps."  Reproduce that failure mode.
        return Status::Error(
            ErrorKind::kIndirectJump,
            "unresolvable indirect jump (jr " +
                std::string(mips::RegName(in.rs)) + ") at " + Hex(pc));
      }
    } else if (in.op == Op::kJalr) {
      return Status::Error(ErrorKind::kIndirectJump,
                           "unresolvable indirect call (jalr) at " + Hex(pc));
    } else {
      succs = {pc + 4};
    }
    for (std::uint32_t succ : succs) work.push_back(succ);
  }

  // Pass 2: form blocks [leader, next leader / control instruction].
  for (std::uint32_t leader : leaders) {
    if (visited.count(leader) == 0) continue;  // e.g. dead fallthrough
    MBlock block;
    block.start = leader;
    std::uint32_t pc = leader;
    while (true) {
      const auto& succs = flow.at(pc);
      const bool is_control =
          succs.empty() || succs.size() > 1 || succs[0] != pc + 4 ||
          leaders.count(pc + 4) != 0;
      if (is_control) {
        block.end = pc + 4;
        block.succs = succs;
        break;
      }
      pc += 4;
    }
    cfg.blocks.emplace(leader, std::move(block));
  }
  return cfg;
}

/// Per-function lifter: machine CFG -> SSA function.
class FunctionLifter {
 public:
  FunctionLifter(const SoftBinary& binary, const MachineCfg& cfg,
                 ir::Function& function, const LiftOptions& options)
      : binary_(binary), cfg_(cfg), function_(function), options_(options) {}

  Status Run() {
    CreateBlocks();
    // Lift blocks in discovery (address) order; SSA state resolution handles
    // any order because block-entry reads become placeholders.
    for (const auto& [leader, mblock] : cfg_.blocks) {
      if (Status status = LiftBlock(mblock); !status.ok()) return status;
    }
    function_.RecomputeCfg();
    ResolvePlaceholders();
    function_.RemoveUnreachableBlocks();
    EliminateTrivialPhis(function_);
    function_.RemoveDeadInstrs();
    function_.RecomputeCfg();
    AnnotateProfile();
    return Status::Ok();
  }

 private:
  struct BlockState {
    std::array<ir::Value, kNumLocs> reg;  // value at current point / exit
    ir::Block* block = nullptr;
  };

  void CreateBlocks() {
    // The entry block must be first in the function.
    std::vector<std::uint32_t> order;
    order.push_back(cfg_.entry);
    for (const auto& [leader, mblock] : cfg_.blocks) {
      if (leader != cfg_.entry) order.push_back(leader);
    }
    for (std::uint32_t leader : order) {
      std::ostringstream name;
      name << "bb_" << std::hex << leader;
      ir::Block* block = function_.CreateBlock(name.str(), leader);
      blocks_[leader] = block;
      states_[leader].block = block;
    }
  }

  ir::Value Undef() {
    if (undef_ == nullptr) {
      undef_ = function_.Create(ir::Opcode::kUndef);
      // Prepend into entry so it dominates all uses.
      ir::Block* entry = blocks_.at(cfg_.entry);
      entry->instrs.insert(entry->instrs.begin(), undef_);
      undef_->parent = entry;
    }
    return ir::Value::Of(undef_);
  }

  /// Value of register `reg` at the entry of `leader`'s block.
  ir::Value EntryValue(std::uint32_t leader, unsigned reg) {
    if (reg == 0) return ir::Value::Const(0);
    const auto key = std::make_pair(leader, reg);
    if (const auto it = entry_values_.find(key); it != entry_values_.end()) {
      return it->second;
    }
    ir::Value value;
    if (leader == cfg_.entry) {
      ir::Instr* input = function_.Create(ir::Opcode::kInput);
      input->input_index = static_cast<std::uint16_t>(reg);
      input->src_pc = leader;
      ir::Block* entry = blocks_.at(cfg_.entry);
      entry->instrs.insert(entry->instrs.begin(), input);
      input->parent = entry;
      value = ir::Value::Of(input);
    } else {
      // Create a phi placeholder; operands are filled after all blocks are
      // lifted (ResolvePlaceholders).  Memoize first to break cycles.
      ir::Instr* phi = function_.Create(ir::Opcode::kPhi);
      phi->src_pc = leader;
      blocks_.at(leader)->PrependPhi(phi);
      entry_values_[key] = ir::Value::Of(phi);
      pending_phis_.emplace_back(phi, leader, reg);
      return ir::Value::Of(phi);
    }
    entry_values_[key] = value;
    return value;
  }

  /// Value of register `reg` at the exit of `leader`'s block.
  ir::Value ExitValue(std::uint32_t leader, unsigned reg) {
    if (reg == 0) return ir::Value::Const(0);
    const BlockState& state = states_.at(leader);
    if (!state.reg[reg].is_none()) return state.reg[reg];
    return EntryValue(leader, reg);
  }

  void ResolvePlaceholders() {
    // ExitValue may create further placeholder phis while we fill operands,
    // so iterate by index over the growing vector.
    for (std::size_t i = 0; i < pending_phis_.size(); ++i) {
      const auto [phi, leader, reg] = pending_phis_[i];
      ir::Block* block = blocks_.at(leader);
      std::vector<ir::Value> operands;
      operands.reserve(block->preds.size());
      for (ir::Block* pred : block->preds) {
        operands.push_back(ExitValue(pred->start_pc, reg));
      }
      phi->operands = std::move(operands);
    }
  }

  Status LiftBlock(const MBlock& mblock) {
    ir::Block* block = blocks_.at(mblock.start);
    BlockState& state = states_.at(mblock.start);

    const auto read = [&](unsigned reg) -> ir::Value {
      if (reg == 0) return ir::Value::Const(0);
      if (state.reg[reg].is_none()) {
        state.reg[reg] = EntryValue(mblock.start, reg);
      }
      return state.reg[reg];
    };
    const auto write = [&](unsigned reg, ir::Value value) {
      if (reg != 0) state.reg[reg] = value;
    };
    const auto emit = [&](ir::Opcode op, std::vector<ir::Value> operands,
                          std::uint32_t pc) -> ir::Instr* {
      ir::Instr* instr = function_.Emit(block, op, std::move(operands));
      instr->src_pc = pc;
      return instr;
    };
    const auto binop = [&](ir::Opcode op, ir::Value a, ir::Value b,
                           std::uint32_t pc) -> ir::Value {
      return ir::Value::Of(emit(op, {a, b}, pc));
    };

    for (std::uint32_t pc = mblock.start; pc < mblock.end; pc += 4) {
      const Instr in = *mips::Decode(binary_.WordAt(pc));
      const ir::Value imm = ir::Value::Const(in.imm);
      switch (in.op) {
        case Op::kSll:
          write(in.rd, binop(ir::Opcode::kShl, read(in.rt),
                             ir::Value::Const(in.shamt), pc));
          break;
        case Op::kSrl:
          write(in.rd, binop(ir::Opcode::kShrL, read(in.rt),
                             ir::Value::Const(in.shamt), pc));
          break;
        case Op::kSra:
          write(in.rd, binop(ir::Opcode::kShrA, read(in.rt),
                             ir::Value::Const(in.shamt), pc));
          break;
        case Op::kSllv:
          write(in.rd, binop(ir::Opcode::kShl, read(in.rt),
                             binop(ir::Opcode::kAnd, read(in.rs),
                                   ir::Value::Const(31), pc), pc));
          break;
        case Op::kSrlv:
          write(in.rd, binop(ir::Opcode::kShrL, read(in.rt),
                             binop(ir::Opcode::kAnd, read(in.rs),
                                   ir::Value::Const(31), pc), pc));
          break;
        case Op::kSrav:
          write(in.rd, binop(ir::Opcode::kShrA, read(in.rt),
                             binop(ir::Opcode::kAnd, read(in.rs),
                                   ir::Value::Const(31), pc), pc));
          break;
        case Op::kAdd: case Op::kAddu:
          write(in.rd, binop(ir::Opcode::kAdd, read(in.rs), read(in.rt), pc));
          break;
        case Op::kSub: case Op::kSubu:
          write(in.rd, binop(ir::Opcode::kSub, read(in.rs), read(in.rt), pc));
          break;
        case Op::kAnd:
          write(in.rd, binop(ir::Opcode::kAnd, read(in.rs), read(in.rt), pc));
          break;
        case Op::kOr:
          write(in.rd, binop(ir::Opcode::kOr, read(in.rs), read(in.rt), pc));
          break;
        case Op::kXor:
          write(in.rd, binop(ir::Opcode::kXor, read(in.rs), read(in.rt), pc));
          break;
        case Op::kNor:
          write(in.rd, binop(ir::Opcode::kNor, read(in.rs), read(in.rt), pc));
          break;
        case Op::kSlt:
          write(in.rd, binop(ir::Opcode::kLtS, read(in.rs), read(in.rt), pc));
          break;
        case Op::kSltu:
          write(in.rd, binop(ir::Opcode::kLtU, read(in.rs), read(in.rt), pc));
          break;
        case Op::kMfhi: write(in.rd, read(kHi)); break;
        case Op::kMflo: write(in.rd, read(kLo)); break;
        case Op::kMthi: write(kHi, read(in.rs)); break;
        case Op::kMtlo: write(kLo, read(in.rs)); break;
        case Op::kMult:
          write(kLo, binop(ir::Opcode::kMul, read(in.rs), read(in.rt), pc));
          write(kHi, binop(ir::Opcode::kMulHiS, read(in.rs), read(in.rt), pc));
          break;
        case Op::kMultu:
          write(kLo, binop(ir::Opcode::kMul, read(in.rs), read(in.rt), pc));
          write(kHi, binop(ir::Opcode::kMulHiU, read(in.rs), read(in.rt), pc));
          break;
        case Op::kDiv:
          write(kLo, binop(ir::Opcode::kDivS, read(in.rs), read(in.rt), pc));
          write(kHi, binop(ir::Opcode::kRemS, read(in.rs), read(in.rt), pc));
          break;
        case Op::kDivu:
          write(kLo, binop(ir::Opcode::kDivU, read(in.rs), read(in.rt), pc));
          write(kHi, binop(ir::Opcode::kRemU, read(in.rs), read(in.rt), pc));
          break;
        case Op::kAddi: case Op::kAddiu:
          write(in.rt, binop(ir::Opcode::kAdd, read(in.rs), imm, pc));
          break;
        case Op::kSlti:
          write(in.rt, binop(ir::Opcode::kLtS, read(in.rs), imm, pc));
          break;
        case Op::kSltiu:
          write(in.rt, binop(ir::Opcode::kLtU, read(in.rs), imm, pc));
          break;
        case Op::kAndi:
          write(in.rt, binop(ir::Opcode::kAnd, read(in.rs), imm, pc));
          break;
        case Op::kOri:
          write(in.rt, binop(ir::Opcode::kOr, read(in.rs), imm, pc));
          break;
        case Op::kXori:
          write(in.rt, binop(ir::Opcode::kXor, read(in.rs), imm, pc));
          break;
        case Op::kLui:
          write(in.rt, ir::Value::Const(in.imm << 16));
          break;
        case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu:
        case Op::kLw: {
          // Always materialize the base+offset add, even for offset 0:
          // unrolled loop sections then stay position-isomorphic for the
          // rerolling matcher (constant folding removes the +0 later).
          ir::Value addr = binop(ir::Opcode::kAdd, read(in.rs), imm, pc);
          ir::Instr* load = emit(ir::Opcode::kLoad, {addr}, pc);
          switch (in.op) {
            case Op::kLb:  load->mem_bytes = 1; load->mem_signed = true;
                           load->width = 8;  load->is_signed = true;  break;
            case Op::kLbu: load->mem_bytes = 1; load->mem_signed = false;
                           load->width = 8;  load->is_signed = false; break;
            case Op::kLh:  load->mem_bytes = 2; load->mem_signed = true;
                           load->width = 16; load->is_signed = true;  break;
            case Op::kLhu: load->mem_bytes = 2; load->mem_signed = false;
                           load->width = 16; load->is_signed = false; break;
            default:       load->mem_bytes = 4; break;
          }
          write(in.rt, ir::Value::Of(load));
          break;
        }
        case Op::kSb: case Op::kSh: case Op::kSw: {
          ir::Value addr = binop(ir::Opcode::kAdd, read(in.rs), imm, pc);
          ir::Instr* store = emit(ir::Opcode::kStore, {addr, read(in.rt)}, pc);
          store->mem_bytes = in.op == Op::kSw ? 4 : in.op == Op::kSh ? 2 : 1;
          break;
        }
        case Op::kJal: {
          ir::Instr* call = emit(
              ir::Opcode::kCall,
              {read(mips::kA0), read(mips::kA1), read(mips::kA2),
               read(mips::kA3), read(mips::kSp)},
              pc);
          call->call_target = mips::JumpTarget(pc, in);
          write(mips::kV0, ir::Value::Of(call));
          // Caller-saved registers are clobbered by the call (MIPS ABI).
          write(mips::kV1, Undef());
          write(mips::kAt, Undef());
          write(mips::kRa, Undef());
          for (unsigned reg = mips::kA0; reg <= mips::kA3; ++reg) {
            write(reg, Undef());
          }
          for (unsigned reg = mips::kT0; reg <= mips::kT7; ++reg) {
            write(reg, Undef());
          }
          write(mips::kT8, Undef());
          write(mips::kT9, Undef());
          write(kHi, Undef());
          write(kLo, Undef());
          break;
        }
        case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
        case Op::kBltz: case Op::kBgez: {
          const std::uint32_t target = mips::BranchTarget(pc, in);
          // Unconditional pseudo-branches were normalized in CFG recovery.
          if (in.op == Op::kBeq && in.rs == 0 && in.rt == 0) {
            ir::Instr* br = emit(ir::Opcode::kBr, {}, pc);
            br->target0 = blocks_.at(target);
            break;
          }
          if (in.op == Op::kBne && in.rs == in.rt) {
            ir::Instr* br = emit(ir::Opcode::kBr, {}, pc);
            br->target0 = blocks_.at(pc + 4);
            break;
          }
          ir::Value cond;
          switch (in.op) {
            case Op::kBeq:
              cond = binop(ir::Opcode::kEq, read(in.rs), read(in.rt), pc);
              break;
            case Op::kBne:
              cond = binop(ir::Opcode::kNe, read(in.rs), read(in.rt), pc);
              break;
            case Op::kBlez:
              cond = binop(ir::Opcode::kLeS, read(in.rs),
                           ir::Value::Const(0), pc);
              break;
            case Op::kBgtz:
              cond = binop(ir::Opcode::kGtS, read(in.rs),
                           ir::Value::Const(0), pc);
              break;
            case Op::kBltz:
              cond = binop(ir::Opcode::kLtS, read(in.rs),
                           ir::Value::Const(0), pc);
              break;
            default:
              cond = binop(ir::Opcode::kGeS, read(in.rs),
                           ir::Value::Const(0), pc);
              break;
          }
          ir::Instr* br = emit(ir::Opcode::kCondBr, {cond}, pc);
          br->target0 = blocks_.at(target);
          br->target1 = blocks_.at(pc + 4);
          break;
        }
        case Op::kJ: {
          ir::Instr* br = emit(ir::Opcode::kBr, {}, pc);
          br->target0 = blocks_.at(mips::JumpTarget(pc, in));
          break;
        }
        case Op::kJr:
          Check(in.rs == mips::kRa, "lifter: jr to non-ra survived recovery");
          emit(ir::Opcode::kRet, {read(mips::kV0)}, pc);
          break;
        case Op::kJalr:
          throw InternalError("lifter: jalr survived CFG recovery");
        case Op::kInvalid:
          return Status::Error(ErrorKind::kMalformedBinary,
                               "invalid instruction at " + Hex(pc));
      }
    }

    // Fallthrough block (last instruction was not control flow).
    if (!block->has_terminator()) {
      Check(mblock.succs.size() == 1, "lifter: fallthrough without successor");
      ir::Instr* br = function_.Create(ir::Opcode::kBr);
      br->src_pc = mblock.end - 4;
      br->target0 = blocks_.at(mblock.succs[0]);
      block->Append(br);
    }
    return Status::Ok();
  }

  void AnnotateProfile() {
    if (options_.profile == nullptr) return;
    const mips::ExecProfile& profile = *options_.profile;
    for (const auto& block_ptr : function_.blocks()) {
      ir::Block* block = block_ptr.get();
      block->exec_count = profile.CountAt(block->start_pc);
      if (!block->has_terminator()) continue;
      ir::Instr* term = block->terminator();
      if (term->op != ir::Opcode::kCondBr || term->src_pc == 0) continue;
      const std::size_t index = (term->src_pc - mips::kTextBase) / 4u;
      if (index < profile.branch_taken.size()) {
        block->taken_count = profile.branch_taken[index];
        block->not_taken_count = profile.branch_not_taken[index];
      }
    }
  }

  const SoftBinary& binary_;
  const MachineCfg& cfg_;
  ir::Function& function_;
  const LiftOptions& options_;
  std::map<std::uint32_t, ir::Block*> blocks_;
  std::map<std::uint32_t, BlockState> states_;
  std::map<std::pair<std::uint32_t, unsigned>, ir::Value> entry_values_;
  std::vector<std::tuple<ir::Instr*, std::uint32_t, unsigned>> pending_phis_;
  ir::Instr* undef_ = nullptr;
};

}  // namespace

std::size_t EliminateTrivialPhis(ir::Function& function) {
  std::size_t total_removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<const ir::Instr*, ir::Value> replacements;
    for (const auto& block : function.blocks()) {
      for (ir::Instr* phi : block->Phis()) {
        ir::Value unique = ir::Value::None();
        bool trivial = true;
        for (const ir::Value& operand : phi->operands) {
          if (operand.is_instr() && operand.def == phi) continue;  // self
          if (unique.is_none()) {
            unique = operand;
          } else if (!(unique == operand)) {
            trivial = false;
            break;
          }
        }
        if (trivial && !unique.is_none()) {
          replacements[phi] = unique;
        }
      }
    }
    if (replacements.empty()) break;
    function.ReplaceAllUses(replacements);
    for (const auto& block : function.blocks()) {
      auto& instrs = block->instrs;
      instrs.erase(std::remove_if(instrs.begin(), instrs.end(),
                                  [&](const ir::Instr* instr) {
                                    return replacements.count(instr) != 0;
                                  }),
                   instrs.end());
    }
    total_removed += replacements.size();
    changed = true;
  }
  return total_removed;
}

namespace {

/// Shared lift driver: recover and lift `root_entry` plus its transitive
/// callees.  Whole-binary lifting roots at the binary entry point;
/// region-scoped lifting roots at an arbitrary discovered function.
Result<ir::Module> LiftFrom(const mips::SoftBinary& binary,
                            std::uint32_t root_entry,
                            const LiftOptions& options) {
  ir::Module module;

  // Discover functions: the root plus transitive jal targets.
  std::set<std::uint32_t> discovered{root_entry};
  std::deque<std::uint32_t> work{root_entry};
  std::map<std::uint32_t, MachineCfg> cfgs;
  while (!work.empty()) {
    const std::uint32_t entry = work.front();
    work.pop_front();
    if (cfgs.count(entry) != 0) continue;
    auto cfg = RecoverCfg(binary, entry);
    if (!cfg.ok()) return cfg.status();
    for (std::uint32_t callee : cfg.value().call_targets) {
      if (discovered.insert(callee).second) work.push_back(callee);
    }
    cfgs.emplace(entry, std::move(cfg).take());
  }

  // Lift each function.  Names come from symbols when available.
  for (const auto& [entry, cfg] : cfgs) {
    std::string name = "func_" + Hex(entry);
    for (const auto& [symbol, addr] : binary.symbols) {
      if (addr == entry) {
        name = symbol;
        break;
      }
    }
    auto function = std::make_unique<ir::Function>(name, entry);
    FunctionLifter lifter(binary, cfg, *function, options);
    if (Status status = lifter.Run(); !status.ok()) return status;
    if (entry == root_entry) module.main = function.get();
    module.functions.push_back(std::move(function));
  }
  Check(module.main != nullptr, "Lift: root function missing");
  return module;
}

}  // namespace

Result<ir::Module> Lift(const mips::SoftBinary& binary,
                        const LiftOptions& options) {
  return LiftFrom(binary, binary.entry, options);
}

Result<ir::Module> LiftAt(const mips::SoftBinary& binary,
                          std::uint32_t root_entry,
                          const LiftOptions& options) {
  if (!binary.ContainsText(root_entry)) {
    return Status::Error(ErrorKind::kMalformedBinary,
                         "LiftAt: root entry outside text segment");
  }
  return LiftFrom(binary, root_entry, options);
}

std::vector<std::uint32_t> FunctionEntries(const mips::SoftBinary& binary) {
  std::set<std::uint32_t> entries{binary.entry};
  for (std::size_t i = 0; i < binary.text.size(); ++i) {
    const auto instr = mips::Decode(binary.text[i]);
    if (!instr.has_value() || instr->op != mips::Op::kJal) continue;
    const std::uint32_t pc = mips::kTextBase + static_cast<std::uint32_t>(i) * 4u;
    const std::uint32_t target = mips::JumpTarget(pc, *instr);
    if (binary.ContainsText(target)) entries.insert(target);
  }
  return {entries.begin(), entries.end()};
}

}  // namespace b2h::decomp
