#include "decomp/pipeline.hpp"

#include "decomp/lifter.hpp"
#include "ir/verifier.hpp"

namespace b2h::decomp {

Result<DecompiledProgram> Decompile(const mips::SoftBinary& binary,
                                    const DecompileOptions& options) {
  LiftOptions lift_options;
  lift_options.profile = options.profile;
  auto lifted = Lift(binary, lift_options);
  if (!lifted.ok()) return lifted.status();

  DecompiledProgram program;
  program.module = std::move(lifted).take();
  program.binary = &binary;
  DecompileStats& stats = program.stats;

  for (const auto& function : program.module.functions) {
    stats.lifted_instrs += function->NumInstrs();
  }

  for (const auto& function : program.module.functions) {
    if (options.reroll_loops) {
      const RerollStats reroll = RerollLoops(*function);
      stats.loops_rerolled += reroll.loops_rerolled;
      stats.reroll_ops_removed += reroll.ops_removed;
    }
    if (options.simplify_constants) {
      stats.constants_simplified += SimplifyConstants(*function);
    }
    if (options.remove_stack_ops) {
      const StackRemovalStats stack = RemoveStackOperations(*function);
      stats.stack_slots_promoted += stack.slots_promoted;
      stats.stack_ops_removed += stack.loads_removed + stack.stores_removed;
      if (options.simplify_constants) {
        stats.constants_simplified += SimplifyConstants(*function);
      }
    }
  }

  if (options.inline_small_functions) {
    const InlineStats inlined = InlineSmallFunctions(program.module);
    stats.calls_inlined += inlined.calls_inlined;
    if (inlined.calls_inlined > 0 && options.simplify_constants) {
      for (const auto& function : program.module.functions) {
        stats.constants_simplified += SimplifyConstants(*function);
      }
    }
  }

  for (const auto& function : program.module.functions) {
    if (options.convert_ifs) {
      const IfConversionStats ifs = ConvertIfs(*function);
      stats.ifs_converted += ifs.diamonds_converted;
      if (ifs.diamonds_converted > 0 && options.simplify_constants) {
        stats.constants_simplified += SimplifyConstants(*function);
      }
    }
    if (options.promote_strength) {
      const StrengthPromotionStats promoted = PromoteStrength(*function);
      stats.muls_recovered += promoted.muls_recovered;
    }
    if (options.reduce_strength) {
      const StrengthReductionStats reduced = ReduceStrength(*function);
      stats.strength_reduced += reduced.muls_to_shifts +
                                reduced.divs_to_shifts +
                                reduced.rems_to_masks;
    }
    if (options.reduce_operator_sizes) {
      const SizeReductionStats sizes = ReduceOperatorSizes(*function);
      stats.instrs_narrowed += sizes.narrowed;
      stats.bits_saved += sizes.total_bits_saved;
    }
    function->RemoveDeadInstrs();
    function->RecomputeCfg();
    stats.final_instrs += function->NumInstrs();
  }

  if (options.verify) {
    if (Status status = ir::Verify(program.module); !status.ok()) {
      return status;
    }
  }
  return program;
}

}  // namespace b2h::decomp
