#include "decomp/pipeline.hpp"

#include "decomp/pass_manager.hpp"

namespace b2h::decomp {

Result<DecompiledProgram> Decompile(
    std::shared_ptr<const mips::SoftBinary> binary,
    const DecompileOptions& options) {
  return PassManager::FromOptions(options).Run(std::move(binary),
                                               options.profile);
}

Result<DecompiledProgram> Decompile(const mips::SoftBinary& binary,
                                    const DecompileOptions& options) {
  return Decompile(std::make_shared<const mips::SoftBinary>(binary), options);
}

}  // namespace b2h::decomp
