// Stack operation removal (paper §2).
//
// Compilers spill locals and temporaries to sp-relative stack slots (every
// local at -O0; saved registers and spills at higher levels).  Synthesizing
// those loads/stores would serialize the datapath through memory ports, so
// this pass promotes stack slots to SSA values.
//
// Safety argument (documented platform conventions, DESIGN.md):
//  - Addresses are classified by a forward dataflow over SSA into
//    sp+constant (slot), provably-not-stack (derived from data-segment
//    constants or non-address arithmetic), or unknown.
//  - Promotion runs only if no access has an unknown address and no
//    sp-derived value escapes (stored to memory, passed as a data argument,
//    or used in non-affine arithmetic).  Callees cannot touch the caller
//    frame: arguments are register-passed and callee frames sit strictly
//    below the caller's sp.
//  - Slots with mixed access sizes or overlapping extents are left in
//    memory.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

constexpr std::uint16_t kRegSp = 29;

/// Address classification lattice value.
struct AddrClass {
  enum class Kind : std::uint8_t { kTop, kSp, kNotStack, kUnknown };
  Kind kind = Kind::kTop;
  std::int32_t offset = 0;  // valid for kSp

  static AddrClass Top() { return {}; }
  static AddrClass Sp(std::int32_t offset) {
    return {Kind::kSp, offset};
  }
  static AddrClass NotStack() { return {Kind::kNotStack, 0}; }
  static AddrClass Unknown() { return {Kind::kUnknown, 0}; }

  [[nodiscard]] bool operator==(const AddrClass&) const = default;
};

AddrClass Join(const AddrClass& a, const AddrClass& b) {
  if (a.kind == AddrClass::Kind::kTop) return b;
  if (b.kind == AddrClass::Kind::kTop) return a;
  if (a == b) return a;
  if (a.kind == AddrClass::Kind::kNotStack &&
      b.kind == AddrClass::Kind::kNotStack) {
    return AddrClass::NotStack();
  }
  return AddrClass::Unknown();
}

class StackAnalysis {
 public:
  explicit StackAnalysis(ir::Function& function) : function_(function) {}

  /// Run the classification to a fixpoint; returns false if promotion is
  /// unsafe (unknown addresses or escaping sp-derived values).
  bool Classify() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : function_.blocks()) {
        for (ir::Instr* instr : block->instrs) {
          const AddrClass next = Transfer(*instr);
          AddrClass& current = class_[instr];
          const AddrClass joined = Join(current, next);
          if (!(joined == current)) {
            current = joined;
            changed = true;
          }
        }
      }
    }
    return CheckSafety();
  }

  [[nodiscard]] AddrClass ClassOf(const Value& value) const {
    if (value.is_const()) return AddrClass::NotStack();
    const auto it = class_.find(value.def);
    return it == class_.end() ? AddrClass::Top() : it->second;
  }

 private:
  AddrClass Transfer(const ir::Instr& instr) {
    switch (instr.op) {
      case Opcode::kInput:
        return instr.input_index == kRegSp ? AddrClass::Sp(0)
                                           : AddrClass::NotStack();
      case Opcode::kConst:
        return AddrClass::NotStack();
      case Opcode::kUndef:
      case Opcode::kLoad:
      case Opcode::kCall:
        return AddrClass::NotStack();
      case Opcode::kAdd: {
        const AddrClass a = ClassOf(instr.operands[0]);
        if (a.kind == AddrClass::Kind::kSp && instr.operands[1].is_const()) {
          return AddrClass::Sp(a.offset + instr.operands[1].imm);
        }
        const AddrClass b = ClassOf(instr.operands[1]);
        if (a.kind == AddrClass::Kind::kNotStack &&
            b.kind == AddrClass::Kind::kNotStack) {
          return AddrClass::NotStack();
        }
        if (a.kind == AddrClass::Kind::kTop || b.kind == AddrClass::Kind::kTop) {
          return AddrClass::Top();
        }
        return AddrClass::Unknown();
      }
      case Opcode::kSub: {
        const AddrClass a = ClassOf(instr.operands[0]);
        if (a.kind == AddrClass::Kind::kSp && instr.operands[1].is_const()) {
          return AddrClass::Sp(a.offset - instr.operands[1].imm);
        }
        const AddrClass b = ClassOf(instr.operands[1]);
        if (a.kind == AddrClass::Kind::kNotStack &&
            b.kind == AddrClass::Kind::kNotStack) {
          return AddrClass::NotStack();
        }
        if (a.kind == AddrClass::Kind::kTop || b.kind == AddrClass::Kind::kTop) {
          return AddrClass::Top();
        }
        return AddrClass::Unknown();
      }
      case Opcode::kPhi: {
        AddrClass joined = AddrClass::Top();
        for (const Value& operand : instr.operands) {
          joined = Join(joined, ClassOf(operand));
        }
        return joined;
      }
      case Opcode::kStore: case Opcode::kBr: case Opcode::kCondBr:
      case Opcode::kRet:
        return AddrClass::NotStack();  // no result; value unused
      default: {
        // Any other operation over not-stack operands stays not-stack.
        for (const Value& operand : instr.operands) {
          const AddrClass c = ClassOf(operand);
          if (c.kind == AddrClass::Kind::kTop) return AddrClass::Top();
          if (c.kind != AddrClass::Kind::kNotStack) return AddrClass::Unknown();
        }
        return AddrClass::NotStack();
      }
    }
  }

  /// No unknown-address memory access; no sp-derived value escaping.
  bool CheckSafety() {
    for (const auto& block : function_.blocks()) {
      for (const ir::Instr* instr : block->instrs) {
        if (instr->op == Opcode::kLoad || instr->op == Opcode::kStore) {
          const AddrClass addr = ClassOf(instr->operands[0]);
          if (addr.kind == AddrClass::Kind::kUnknown ||
              addr.kind == AddrClass::Kind::kTop) {
            return false;
          }
        }
        // Escape checks on sp-derived values.
        for (std::size_t i = 0; i < instr->operands.size(); ++i) {
          const AddrClass c = ClassOf(instr->operands[i]);
          if (c.kind != AddrClass::Kind::kSp) continue;
          const bool allowed =
              // Address position of a memory access.
              ((instr->op == Opcode::kLoad || instr->op == Opcode::kStore) &&
               i == 0) ||
              // Affine arithmetic keeps the classification.
              instr->op == Opcode::kAdd || instr->op == Opcode::kSub ||
              instr->op == Opcode::kPhi ||
              // Operand 4 of a call is the callee's sp (frames are disjoint).
              (instr->op == Opcode::kCall && i == 4);
          if (!allowed) return false;
        }
      }
    }
    return true;
  }

  ir::Function& function_;
  std::unordered_map<const ir::Instr*, AddrClass> class_;
};

}  // namespace

StackRemovalStats RemoveStackOperations(ir::Function& function) {
  StackRemovalStats stats;
  StackAnalysis analysis(function);
  if (!analysis.Classify()) {
    stats.aborted_unsafe = true;
    return stats;
  }

  // Identify slots: offset -> access size; reject mixed sizes / overlaps.
  struct SlotUse {
    std::uint8_t size = 0;
    bool mixed = false;
  };
  std::map<std::int32_t, SlotUse> slots;
  for (const auto& block : function.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op != Opcode::kLoad && instr->op != Opcode::kStore) continue;
      const AddrClass addr = analysis.ClassOf(instr->operands[0]);
      if (addr.kind != AddrClass::Kind::kSp) continue;
      SlotUse& slot = slots[addr.offset];
      if (slot.size == 0) {
        slot.size = instr->mem_bytes;
      } else if (slot.size != instr->mem_bytes) {
        slot.mixed = true;
      }
    }
  }
  // Overlap rejection: [o, o+size) intervals must be disjoint.
  std::set<std::int32_t> rejected;
  for (auto it = slots.begin(); it != slots.end(); ++it) {
    auto next = std::next(it);
    if (next != slots.end() &&
        it->first + static_cast<std::int32_t>(it->second.size) > next->first) {
      rejected.insert(it->first);
      rejected.insert(next->first);
    }
    if (it->second.mixed) rejected.insert(it->first);
  }

  // mem2reg over the surviving slots, with the same placeholder-phi approach
  // as the lifter.
  function.RecomputeCfg();
  std::map<std::pair<const ir::Block*, std::int32_t>, Value> entry_values;
  std::vector<std::tuple<ir::Instr*, const ir::Block*, std::int32_t>>
      pending_phis;
  // Per-block sequential state and exit values.
  std::map<const ir::Block*, std::map<std::int32_t, Value>> exit_values;
  std::unordered_map<const ir::Instr*, Value> load_replacements;
  std::vector<ir::Instr*> dead_stores;
  ir::Instr* undef = nullptr;

  const auto get_undef = [&]() -> Value {
    if (undef == nullptr) {
      undef = function.Create(Opcode::kUndef);
      ir::Block* entry = function.entry();
      entry->instrs.insert(entry->instrs.begin(), undef);
      undef->parent = entry;
    }
    return Value::Of(undef);
  };

  std::function<Value(const ir::Block*, std::int32_t)> entry_value =
      [&](const ir::Block* block, std::int32_t offset) -> Value {
    const auto key = std::make_pair(block, offset);
    if (const auto it = entry_values.find(key); it != entry_values.end()) {
      return it->second;
    }
    if (block->preds.empty()) {
      const Value value = get_undef();
      entry_values[key] = value;
      return value;
    }
    ir::Instr* phi = function.Create(Opcode::kPhi);
    const_cast<ir::Block*>(block)->PrependPhi(phi);
    entry_values[key] = Value::Of(phi);
    pending_phis.emplace_back(phi, block, offset);
    return Value::Of(phi);
  };

  for (const auto& block : function.blocks()) {
    std::map<std::int32_t, Value> state;
    // Iterate over a snapshot: entry_value() may prepend phis to
    // block->instrs (for this or other blocks) while we walk.
    const std::vector<ir::Instr*> snapshot = block->instrs;
    for (ir::Instr* instr : snapshot) {
      if (instr->op != Opcode::kLoad && instr->op != Opcode::kStore) continue;
      const AddrClass addr = analysis.ClassOf(instr->operands[0]);
      if (addr.kind != AddrClass::Kind::kSp ||
          rejected.count(addr.offset) != 0) {
        continue;
      }
      if (instr->op == Opcode::kStore) {
        state[addr.offset] = instr->operands[1];
        dead_stores.push_back(instr);
        ++stats.stores_removed;
      } else {
        Value value;
        if (const auto it = state.find(addr.offset); it != state.end()) {
          value = it->second;
        } else {
          value = entry_value(block.get(), addr.offset);
        }
        if (instr->mem_bytes < 4) {
          // Narrow load: only the stored value's low bytes are observed.
          // Mutate the load into the matching extension in place.
          instr->ext_from = static_cast<std::uint8_t>(instr->mem_bytes * 8);
          instr->op = instr->mem_signed ? Opcode::kSExt : Opcode::kZExt;
          instr->operands = {value};
        } else {
          load_replacements[instr] = value;
        }
        ++stats.loads_removed;
      }
    }
    exit_values[block.get()] = std::move(state);
  }

  // Fill phi operands (may create more placeholder phis; index loop).
  const auto exit_value = [&](const ir::Block* block,
                              std::int32_t offset) -> Value {
    const auto& state = exit_values[block];
    if (const auto it = state.find(offset); it != state.end()) {
      return it->second;
    }
    return entry_value(block, offset);
  };
  for (std::size_t i = 0; i < pending_phis.size(); ++i) {
    const auto [phi, block, offset] = pending_phis[i];
    std::vector<Value> operands;
    operands.reserve(block->preds.size());
    for (const ir::Block* pred : block->preds) {
      operands.push_back(exit_value(pred, offset));
    }
    phi->operands = std::move(operands);
  }

  for (const auto& [offset, slot] : slots) {
    if (rejected.count(offset) == 0) ++stats.slots_promoted;
  }

  function.ReplaceAllUses(load_replacements);
  for (const auto& block : function.blocks()) {
    auto& instrs = block->instrs;
    instrs.erase(
        std::remove_if(instrs.begin(), instrs.end(),
                       [&](const ir::Instr* instr) {
                         return load_replacements.count(instr) != 0 ||
                                std::find(dead_stores.begin(),
                                          dead_stores.end(),
                                          instr) != dead_stores.end();
                       }),
        instrs.end());
  }
  EliminateTrivialPhis(function);
  function.RemoveDeadInstrs();
  function.RecomputeCfg();
  return stats;
}

}  // namespace b2h::decomp
