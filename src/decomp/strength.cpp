// Strength reduction and strength promotion (paper §2).
//
// Reduction (instruction-set overhead removal, aimed at synthesis):
// multiplications/divisions by powers of two become shifts and masks —
// constant shifts are free wiring in hardware while dividers are the most
// expensive datapath operator by far.  Signed division is reduced only when
// the dividend is provably non-negative (arithmetic shift rounds toward
// negative infinity, division toward zero).
//
// Promotion (undoing a software-compiler optimization): compilers decompose
// `x * c` into shift/add/sub chains because microprocessor multipliers are
// slow; in hardware that chain occupies several adders and shifters.  The
// pass recognizes such chains and collapses them back into a single
// multiplication so the synthesis tool can decide the implementation
// ("to give the synthesis tool this added flexibility, we perform strength
// promotion").
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decomp/passes.hpp"
#include "support/bits.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

/// Structural non-negativity: enough to justify DivS/RemS -> shift/mask.
bool ProvablyNonNegative(const Value& value, int depth = 0) {
  if (value.is_const()) return value.imm >= 0;
  if (!value.is_instr() || depth > 8) return false;
  const ir::Instr* def = value.def;
  switch (def->op) {
    case Opcode::kLoad:
      return def->mem_bytes < 4 && !def->mem_signed;
    case Opcode::kZExt:
      return def->ext_from < 32;
    case Opcode::kAnd:
      return ProvablyNonNegative(def->operands[0], depth + 1) ||
             ProvablyNonNegative(def->operands[1], depth + 1);
    case Opcode::kShrL:
      return def->operands[1].is_const() && (def->operands[1].imm & 31) > 0;
    case Opcode::kRemU:
    case Opcode::kDivU:
      return ProvablyNonNegative(def->operands[0], depth + 1) &&
             ProvablyNonNegative(def->operands[1], depth + 1);
    case Opcode::kAdd:
    case Opcode::kMul:
      // Conservative: non-negative inputs could still overflow; only accept
      // narrow results proven by a prior size-reduction run.
      return def->width <= 31 && !def->is_signed;
    default:
      if (ir::IsComparison(def->op)) return true;
      return def->width <= 31 && !def->is_signed;
  }
}

}  // namespace

StrengthReductionStats ReduceStrength(ir::Function& function) {
  StrengthReductionStats stats;
  for (const auto& block : function.blocks()) {
    for (ir::Instr* instr : block->instrs) {
      if (instr->operands.size() != 2 || !instr->operands[1].is_const()) {
        continue;
      }
      const std::int32_t c = instr->operands[1].imm;
      if (c <= 0 || !IsPowerOfTwo(static_cast<std::uint32_t>(c))) continue;
      const auto k = static_cast<std::int32_t>(
          Log2(static_cast<std::uint32_t>(c)));
      switch (instr->op) {
        case Opcode::kMul:
          instr->op = Opcode::kShl;
          instr->operands[1] = Value::Const(k);
          ++stats.muls_to_shifts;
          break;
        case Opcode::kDivU:
          instr->op = Opcode::kShrL;
          instr->operands[1] = Value::Const(k);
          ++stats.divs_to_shifts;
          break;
        case Opcode::kRemU:
          instr->op = Opcode::kAnd;
          instr->operands[1] = Value::Const(c - 1);
          ++stats.rems_to_masks;
          break;
        case Opcode::kDivS:
          if (ProvablyNonNegative(instr->operands[0])) {
            instr->op = Opcode::kShrL;
            instr->operands[1] = Value::Const(k);
            ++stats.divs_to_shifts;
          }
          break;
        case Opcode::kRemS:
          if (ProvablyNonNegative(instr->operands[0])) {
            instr->op = Opcode::kAnd;
            instr->operands[1] = Value::Const(c - 1);
            ++stats.rems_to_masks;
          }
          break;
        default:
          break;
      }
    }
  }
  return stats;
}

namespace {

/// A matched linear term: tree computes coeff * base.
struct LinearTerm {
  Value base;
  std::int64_t coeff = 0;
  std::vector<ir::Instr*> internal;  // tree-internal instructions
};

std::optional<LinearTerm> MatchLinear(const Value& value, int depth) {
  if (depth > 12) return std::nullopt;
  if (value.is_const()) return std::nullopt;  // constants fold elsewhere
  if (value.is_instr()) {
    ir::Instr* def = value.def;
    if (def->op == Opcode::kShl && def->operands[1].is_const()) {
      const unsigned sh = static_cast<unsigned>(def->operands[1].imm) & 31u;
      if (auto inner = MatchLinear(def->operands[0], depth + 1)) {
        inner->coeff <<= sh;
        inner->internal.push_back(def);
        return inner;
      }
      // Fall through: treat the whole shift as an opaque leaf.
    } else if (def->op == Opcode::kAdd || def->op == Opcode::kSub) {
      auto lhs = MatchLinear(def->operands[0], depth + 1);
      auto rhs = MatchLinear(def->operands[1], depth + 1);
      if (lhs && rhs && lhs->base == rhs->base) {
        LinearTerm term;
        term.base = lhs->base;
        term.coeff = def->op == Opcode::kAdd ? lhs->coeff + rhs->coeff
                                             : lhs->coeff - rhs->coeff;
        term.internal = std::move(lhs->internal);
        term.internal.insert(term.internal.end(), rhs->internal.begin(),
                             rhs->internal.end());
        term.internal.push_back(def);
        return term;
      }
      // Fall through: bases differ (or a side is constant) — opaque leaf.
    }
  }
  // Leaf: any non-constant value is 1 * itself.
  LinearTerm term;
  term.base = value;
  term.coeff = 1;
  return term;
}

}  // namespace

StrengthPromotionStats PromoteStrength(ir::Function& function) {
  StrengthPromotionStats stats;

  // Use counts so we only collapse single-use chains (otherwise the chain
  // stays alive and the new multiplier is pure area overhead).
  std::unordered_map<const ir::Instr*, unsigned> use_count;
  for (const auto& block : function.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      for (const Value& operand : instr->operands) {
        if (operand.is_instr()) ++use_count[operand.def];
      }
    }
  }

  for (const auto& block : function.blocks()) {
    for (ir::Instr* instr : block->instrs) {
      if (instr->op != Opcode::kAdd && instr->op != Opcode::kSub) continue;
      auto term = MatchLinear(Value::Of(instr), 0);
      if (!term) continue;
      // The root is part of the tree; internal nodes other than the root
      // must have exactly one use (inside the tree).
      if (term->internal.size() < 2) continue;  // need a real chain
      const std::int64_t c = term->coeff;
      if (c < INT32_MIN || c > INT32_MAX) continue;
      // Single shifts / trivial coefficients are better left alone.
      if (c == 0 || c == 1 ||
          (c > 0 && IsPowerOfTwo(static_cast<std::uint32_t>(c)))) {
        continue;
      }
      // Every non-root tree node must be used only inside the tree (the
      // tree may be a DAG: a subterm like t = 5x in 25x = (t<<2)+t is used
      // twice within it, which is fine).
      const std::unordered_set<const ir::Instr*> tree(term->internal.begin(),
                                                      term->internal.end());
      std::unordered_map<const ir::Instr*, unsigned> in_tree_uses;
      for (const ir::Instr* node : tree) {
        for (const Value& operand : node->operands) {
          if (operand.is_instr() && tree.count(operand.def) != 0) {
            ++in_tree_uses[operand.def];
          }
        }
      }
      bool sharable = false;
      for (const ir::Instr* node : tree) {
        if (node != instr && use_count[node] != in_tree_uses[node]) {
          sharable = true;
          break;
        }
      }
      if (sharable) continue;
      // All tree nodes must live in the same block as the root so the
      // collapse cannot lengthen any other path.
      bool same_block = true;
      for (const ir::Instr* node : term->internal) {
        if (node->parent != instr->parent) {
          same_block = false;
          break;
        }
      }
      if (!same_block) continue;

      stats.ops_collapsed += tree.size() - 1;
      instr->op = Opcode::kMul;
      instr->operands = {term->base,
                         Value::Const(static_cast<std::int32_t>(c))};
      ++stats.muls_recovered;
    }
  }
  function.RemoveDeadInstrs();
  function.RecomputeCfg();
  return stats;
}

}  // namespace b2h::decomp
