// Constant propagation / folding / algebraic simplification.
//
// Paper §2: "One such overhead is the use of arithmetic instructions with an
// immediate value of zero in order to move a value between two registers ...
// If the arithmetic operator is synthesized, then large amounts of area will
// be wasted.  We remove this overhead using constant propagation."
#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"
#include "support/bits.hpp"

namespace b2h::decomp {
namespace {

using ir::Opcode;
using ir::Value;

/// Evaluate a binary op over constants with the platform's semantics
/// (identical to the IR interpreter and MIPS simulator).
std::optional<std::int32_t> Fold(Opcode op, std::int32_t a, std::int32_t b) {
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  switch (op) {
    case Opcode::kAdd: return static_cast<std::int32_t>(ua + ub);
    case Opcode::kSub: return static_cast<std::int32_t>(ua - ub);
    case Opcode::kMul: return static_cast<std::int32_t>(ua * ub);
    case Opcode::kMulHiS:
      return static_cast<std::int32_t>(
          (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >> 32);
    case Opcode::kMulHiU:
      return static_cast<std::int32_t>(
          (static_cast<std::uint64_t>(ua) * static_cast<std::uint64_t>(ub)) >>
          32);
    case Opcode::kDivS:
      return b == 0 ? 0 : (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
    case Opcode::kDivU:
      return b == 0 ? 0 : static_cast<std::int32_t>(ua / ub);
    case Opcode::kRemS:
      return b == 0 ? a : (a == INT32_MIN && b == -1) ? 0 : a % b;
    case Opcode::kRemU:
      return b == 0 ? a : static_cast<std::int32_t>(ua % ub);
    case Opcode::kAnd: return static_cast<std::int32_t>(ua & ub);
    case Opcode::kOr:  return static_cast<std::int32_t>(ua | ub);
    case Opcode::kXor: return static_cast<std::int32_t>(ua ^ ub);
    case Opcode::kNor: return static_cast<std::int32_t>(~(ua | ub));
    case Opcode::kShl: return static_cast<std::int32_t>(ua << (ub & 31u));
    case Opcode::kShrL: return static_cast<std::int32_t>(ua >> (ub & 31u));
    case Opcode::kShrA: return a >> (ub & 31u);
    case Opcode::kEq:  return a == b;
    case Opcode::kNe:  return a != b;
    case Opcode::kLtS: return a < b;
    case Opcode::kLtU: return ua < ub;
    case Opcode::kLeS: return a <= b;
    case Opcode::kLeU: return ua <= ub;
    case Opcode::kGtS: return a > b;
    case Opcode::kGtU: return ua > ub;
    case Opcode::kGeS: return a >= b;
    case Opcode::kGeU: return ua >= ub;
    default: return std::nullopt;
  }
}

bool IsBinary(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kMulHiS: case Opcode::kMulHiU: case Opcode::kDivS:
    case Opcode::kDivU: case Opcode::kRemS: case Opcode::kRemU:
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kNor: case Opcode::kShl: case Opcode::kShrL:
    case Opcode::kShrA:
      return true;
    default:
      return ir::IsComparison(op);
  }
}

/// Algebraic identities returning a replacement value, or None.
Value Identity(const ir::Instr& instr) {
  if (!IsBinary(instr.op) || instr.operands.size() != 2) return Value::None();
  const Value& a = instr.operands[0];
  const Value& b = instr.operands[1];
  switch (instr.op) {
    case Opcode::kAdd:
      if (b.is_const_value(0)) return a;  // the move idiom `addiu rd, rs, 0`
      if (a.is_const_value(0)) return b;
      break;
    case Opcode::kSub:
      if (b.is_const_value(0)) return a;
      if (a == b) return Value::Const(0);
      break;
    case Opcode::kMul:
      if (b.is_const_value(1)) return a;
      if (a.is_const_value(1)) return b;
      if (a.is_const_value(0) || b.is_const_value(0)) return Value::Const(0);
      break;
    case Opcode::kOr:
    case Opcode::kXor:
      if (b.is_const_value(0)) return a;  // the move idiom `or rd, rs, $zero`
      if (a.is_const_value(0)) return b;
      if (instr.op == Opcode::kOr && a == b) return a;
      if (instr.op == Opcode::kXor && a == b) return Value::Const(0);
      break;
    case Opcode::kAnd:
      if (b.is_const_value(-1)) return a;
      if (a.is_const_value(-1)) return b;
      if (a.is_const_value(0) || b.is_const_value(0)) return Value::Const(0);
      if (a == b) return a;
      break;
    case Opcode::kShl:
    case Opcode::kShrL:
    case Opcode::kShrA:
      if (b.is_const_value(0)) return a;
      break;
    case Opcode::kEq:
      if (a == b && a.is_instr()) return Value::Const(1);
      break;
    case Opcode::kNe:
      if (a == b && a.is_instr()) return Value::Const(0);
      break;
    default:
      break;
  }
  return Value::None();
}

}  // namespace

std::size_t SimplifyConstants(ir::Function& function) {
  std::size_t simplified = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<const ir::Instr*, Value> replacements;

    for (const auto& block : function.blocks()) {
      for (ir::Instr* instr : block->instrs) {
        // Constant-fold pure binaries.
        if (IsBinary(instr->op) && instr->operands.size() == 2 &&
            instr->operands[0].is_const() && instr->operands[1].is_const()) {
          if (auto value = Fold(instr->op, instr->operands[0].imm,
                                instr->operands[1].imm)) {
            replacements[instr] = Value::Const(*value);
            continue;
          }
        }
        // kConst instructions become immediate operands.
        if (instr->op == Opcode::kConst) {
          replacements[instr] = Value::Const(instr->imm);
          continue;
        }
        // Select with constant condition.
        if (instr->op == Opcode::kSelect && instr->operands[0].is_const()) {
          replacements[instr] =
              instr->operands[0].imm != 0 ? instr->operands[1]
                                          : instr->operands[2];
          continue;
        }
        // Extensions of constants.
        if ((instr->op == Opcode::kSExt || instr->op == Opcode::kZExt ||
             instr->op == Opcode::kTrunc) &&
            instr->operands[0].is_const()) {
          const auto raw = static_cast<std::uint32_t>(instr->operands[0].imm);
          std::int32_t value = 0;
          if (instr->op == Opcode::kSExt) {
            value = SignExtend(raw, instr->ext_from);
          } else if (instr->op == Opcode::kZExt) {
            value = static_cast<std::int32_t>(raw & LowMask(instr->ext_from));
          } else {
            value = static_cast<std::int32_t>(raw & LowMask(instr->width));
          }
          replacements[instr] = Value::Const(value);
          continue;
        }
        // Algebraic identities.
        const Value identity = Identity(*instr);
        if (!identity.is_none()) {
          replacements[instr] = identity;
          continue;
        }
        // Canonicalize: constants on the right for commutative ops
        // (simplifies later pattern matchers).
        if (IsBinary(instr->op) && ir::IsCommutative(instr->op) &&
            instr->operands.size() == 2 && instr->operands[0].is_const() &&
            !instr->operands[1].is_const()) {
          std::swap(instr->operands[0], instr->operands[1]);
          changed = true;
        }
        // Reassociate (x + c1) + c2 -> x + (c1+c2): collapses the address
        // arithmetic chains lifting produces.
        if (instr->op == Opcode::kAdd && instr->operands[1].is_const() &&
            instr->operands[0].is_instr()) {
          ir::Instr* inner = instr->operands[0].def;
          if (inner->op == Opcode::kAdd && inner->operands[1].is_const() &&
              inner->parent != nullptr) {
            const std::int32_t merged = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(inner->operands[1].imm) +
                static_cast<std::uint32_t>(instr->operands[1].imm));
            instr->operands[0] = inner->operands[0];
            instr->operands[1] = Value::Const(merged);
            changed = true;
          }
        }
      }
    }

    // Fold constant conditional branches (one per round: each fold changes
    // the CFG, and phi operands in the dropped successor must be removed in
    // lockstep with the predecessor edge).
    for (const auto& block : function.blocks()) {
      if (!block->has_terminator()) continue;
      ir::Instr* term = block->terminator();
      if (term->op != Opcode::kCondBr || !term->operands[0].is_const()) {
        continue;
      }
      const bool taken = term->operands[0].imm != 0;
      ir::Block* kept = taken ? term->target0 : term->target1;
      ir::Block* dropped = taken ? term->target1 : term->target0;
      // Remove the phi operand for the dropped edge.  When both targets are
      // the same block it has two pred entries for `block` carrying the same
      // value; dropping either keeps alignment.
      std::vector<std::size_t> occurrences;
      for (std::size_t i = 0; i < dropped->preds.size(); ++i) {
        if (dropped->preds[i] == block.get()) occurrences.push_back(i);
      }
      std::size_t drop_index = SIZE_MAX;
      if (dropped == kept) {
        // Two entries: taken edge (target0) first, fallthrough second.
        // Keep the surviving edge's operand, drop the other.
        if (occurrences.size() == 2) {
          drop_index = taken ? occurrences[1] : occurrences[0];
        }
      } else if (!occurrences.empty()) {
        drop_index = occurrences[0];
      }
      if (drop_index != SIZE_MAX) {
        for (ir::Instr* phi : dropped->Phis()) {
          if (drop_index < phi->operands.size()) {
            phi->operands.erase(
                phi->operands.begin() +
                static_cast<std::ptrdiff_t>(drop_index));
          }
        }
      }
      term->op = Opcode::kBr;
      term->target0 = kept;
      term->target1 = nullptr;
      term->operands.clear();
      term->width = 0;
      function.RecomputeCfg();
      changed = true;
      break;  // CFG changed; rescan from a clean state
    }

    if (!replacements.empty()) {
      function.ReplaceAllUses(replacements);
      for (const auto& block : function.blocks()) {
        auto& instrs = block->instrs;
        instrs.erase(std::remove_if(instrs.begin(), instrs.end(),
                                    [&](const ir::Instr* instr) {
                                      return replacements.count(instr) != 0;
                                    }),
                     instrs.end());
      }
      simplified += replacements.size();
      changed = true;
    }
    if (changed) {
      function.RemoveUnreachableBlocks();
      EliminateTrivialPhis(function);
    }
  }
  function.RemoveDeadInstrs();
  function.RecomputeCfg();
  return simplified;
}

}  // namespace b2h::decomp
