// Control structure recovery (paper §2): "Control structure recovery
// analyzes the CDFG and determines high-level control structures, such as
// loops and if statements."
//
// The recovered structure serves three purposes: it defines the loop
// granules the partitioner selects, it drives the synthesis FSM layout, and
// it backs the paper's claim that "our approach recovered almost all the
// relevant high-level constructs successfully" (the stats below).
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace b2h::decomp {

struct StructureInfo {
  std::size_t loops = 0;
  std::size_t ifs = 0;       ///< if-then (one conditional arm)
  std::size_t if_elses = 0;  ///< if-then-else (two arms, one join)
  std::size_t unstructured_branches = 0;  ///< branches fitting neither form
  std::size_t total_blocks = 0;
  std::string pseudo;  ///< indented pseudo-code rendering

  [[nodiscard]] double StructuredFraction() const {
    const std::size_t total = ifs + if_elses + unstructured_branches;
    return total == 0
               ? 1.0
               : static_cast<double>(ifs + if_elses) /
                     static_cast<double>(total);
  }
};

[[nodiscard]] StructureInfo RecoverStructure(const ir::Function& function);

}  // namespace b2h::decomp
