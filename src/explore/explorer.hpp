// Design-space exploration engine: sweep {binaries} x {platforms} x
// {strategies} x {objectives}, reusing one profile+decompilation per
// (binary, cycle model) and one partition per distinct artifact key, and
// emit every point plus the multi-objective Pareto frontier (speedup vs.
// energy vs. FPGA area).
//
// Layering: the Explorer is built from the same pieces as the Toolchain
// batch API (pass manager, platform registry, thread-pool fan-out) plus the
// strategy registry and the content-addressed ArtifactCache.  The Toolchain
// facade front-doors it as Toolchain::Explore(ExploreSpec).
//
// Determinism contract (asserted by tests): Report() is bit-identical
// across thread counts and across cache-cold vs. cache-warm runs; work and
// cache counters live in StatsReport() so the determinism contract and the
// "second sweep does zero decompilations" contract can coexist.  With a
// disk-backed cache (Toolchain::WithCacheDir / B2H_CACHE_DIR) the same
// contract holds ACROSS PROCESSES: a sweep re-run from a fresh process
// against the same cache dir performs zero simulations/decompilations/
// partitions and reports bit-identically (asserted in test_explore and by
// the CI cache-warm gate).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explore/artifact_cache.hpp"
#include "partition/platform_registry.hpp"
#include "partition/strategy.hpp"
#include "support/error.hpp"

namespace b2h {

/// A named binary handed to the batch APIs (Toolchain::RunMany and the
/// exploration engine).
struct NamedBinary {
  std::string name;
  std::shared_ptr<const mips::SoftBinary> binary;
};

}  // namespace b2h

namespace b2h::explore {

/// Point-in-time progress of a running sweep, for long-explore streaming
/// (the serve daemon forwards these as progress frames / a polled HTTP
/// resource).  `stage` is a static string: "decompile", "rehydrate",
/// "partition", or "done".
struct ExploreProgress {
  const char* stage = "";
  std::uint64_t stage_done = 0;   ///< jobs finished in this stage
  std::uint64_t stage_total = 0;  ///< jobs this stage will run
  std::uint64_t points_total = 0; ///< grid points in the sweep
  std::uint64_t cache_hits = 0;   ///< unique-artifact hits observed so far
  bool done = false;              ///< the sweep has finished
};

struct ExploreSpec {
  std::vector<NamedBinary> binaries;
  /// Registered platform names (partition::PlatformRegistry).
  std::vector<std::string> platforms = {"mips40", "mips200-xc2v1000",
                                        "mips400"};
  /// Registered strategy names (partition::StrategyRegistry).
  std::vector<std::string> strategies = {"paper-greedy", "knapsack-optimal",
                                         "annealing"};
  std::vector<partition::Objective> objectives = {
      partition::Objective::kSpeedup};
  /// Seed / iteration knobs shared by every point (the objective field is
  /// overridden per point).
  partition::StrategyOptions strategy_options;
  /// Optional progress sink, invoked at stage boundaries and per finished
  /// stage job — possibly concurrently from worker threads, so it must be
  /// thread-safe.  Unset = zero cost (no call sites fire).  Purely
  /// observational: the report surfaces stay byte-identical either way.
  std::function<void(const ExploreProgress&)> progress;
};

/// One (binary, platform, strategy, objective) outcome.
struct ExplorePoint {
  std::string binary_name;
  std::string platform_name;
  std::string strategy_name;
  partition::Objective objective = partition::Objective::kSpeedup;
  Status status;  ///< per-point failure (CDFG recovery, unknown names, ...)

  double speedup = 1.0;
  double partitioned_time = 0.0;   ///< seconds
  double energy = 0.0;             ///< partitioned energy, joules
  double energy_savings = 0.0;
  double edp = 0.0;                ///< energy x delay, joule-seconds
  double area_gates = 0.0;
  std::size_t hw_regions = 0;
  std::vector<std::string> hw_names;  ///< selected region names, report order
  std::vector<std::string> rejected;  ///< why regions were skipped

  bool on_frontier = false;   ///< Pareto-optimal within its binary
  bool from_cache = false;    ///< partition artifact predates this sweep

  // Host-time cost (ms) of the stage jobs that produced this point's
  // artifacts this sweep; 0 when the stage was served from the cache.
  // Stage jobs are shared across points (one decompile per cycle model, one
  // partition per artifact key), so every point served by a job reports the
  // job's full cost.  Volatile like from_cache: excluded from the
  // deterministic Report()/Json() surfaces unless explicitly requested
  // (Json(/*include_stage_ms=*/true)).
  double decompile_ms = 0.0;  ///< profile simulation + pass pipeline
  double synth_ms = 0.0;      ///< candidate scan + synthesis (pool Obtain)
  double partition_ms = 0.0;  ///< strategy selection over the candidates
};

/// Metrics the Pareto frontier is computed over: maximize speedup,
/// minimize energy, minimize area.
struct ParetoMetrics {
  double speedup = 1.0;
  double energy = 0.0;
  double area_gates = 0.0;
};

/// True when `a` dominates `b`: no worse on every axis, strictly better on
/// at least one.
[[nodiscard]] bool Dominates(const ParetoMetrics& a, const ParetoMetrics& b);

/// Indices of the non-dominated points, in input order.
[[nodiscard]] std::vector<std::size_t> ParetoFrontier(
    const std::vector<ParetoMetrics>& points);

struct ExploreResult {
  /// Row-major: binary-major, then platform, strategy, objective.
  std::vector<ExplorePoint> points;
  std::size_t num_binaries = 0;
  std::size_t num_platforms = 0;
  std::size_t num_strategies = 0;
  std::size_t num_objectives = 0;

  // Work actually executed this sweep (cache-warm sweeps report zeros).
  std::size_t simulations_run = 0;
  std::size_t decompilations_run = 0;
  std::size_t partitions_run = 0;
  /// Of decompilations_run: programs rebuilt from a disk-cached profile
  /// (no re-simulation) because a partition key missed while its decompile
  /// entry was summary-only.  Zero on fully-warm and fully-cold sweeps.
  std::size_t decompile_rehydrations = 0;
  // Unique-artifact cache traffic this sweep, split by serving tier
  // (cache_hits == cache_memory_hits + cache_disk_hits).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_memory_hits = 0;
  std::size_t cache_disk_hits = 0;
  double wall_ms = 0.0;  ///< host wall clock for the sweep
  // Summed host time of the stage jobs this sweep actually ran (cache-warm
  // sweeps report zeros).  Job time, not point time: shared jobs count once.
  double decompile_stage_ms = 0.0;
  double synth_stage_ms = 0.0;
  double partition_stage_ms = 0.0;

  [[nodiscard]] const ExplorePoint& At(std::size_t binary,
                                       std::size_t platform,
                                       std::size_t strategy,
                                       std::size_t objective) const;

  /// Deterministic sweep report: every point plus the per-binary Pareto
  /// frontier.  Identical across thread counts and cache states.
  [[nodiscard]] std::string Report() const;
  /// Work/cache counters and wall time (varies between runs by design).
  [[nodiscard]] std::string StatsReport() const;
  /// Deterministic JSON report, stamped with kReportSchemaVersion: every
  /// point (metrics, hw region names, rejections, frontier flag) plus the
  /// grid shape.  Deliberately excludes from_cache and all work counters so
  /// warm/cold and serial/concurrent runs serialize bit-identically — the
  /// serve daemon's `explore` responses embed this object.
  ///
  /// `include_stage_ms` additionally emits the per-point stage durations
  /// (decompile_ms/synth_ms/partition_ms) — host-time data that varies
  /// between runs, so it is OFF by default and must never be turned on for
  /// a byte-compared surface (serve responses, the CI cache-warm gate).
  [[nodiscard]] std::string Json(bool include_stage_ms = false) const;
};

struct ExplorerConfig {
  std::string pipeline = "default";
  partition::PartitionOptions partition;
  std::uint64_t max_sim_instructions = 200'000'000;
  unsigned threads = 0;  ///< 0 = hardware concurrency, 1 = serial
  bool verify_ir = true;
};

class Explorer {
 public:
  /// A null cache means a private, sweep-local cache (no reuse).
  explicit Explorer(ExplorerConfig config,
                    std::shared_ptr<ArtifactCache> cache = nullptr);

  [[nodiscard]] ExploreResult Run(const ExploreSpec& spec) const;

  [[nodiscard]] const std::shared_ptr<ArtifactCache>& cache() const {
    return cache_;
  }

 private:
  ExplorerConfig config_;
  std::shared_ptr<ArtifactCache> cache_;
};

}  // namespace b2h::explore
