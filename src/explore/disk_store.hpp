// Versioned, crash-safe, content-addressed entry store — the disk tier of
// the explore::ArtifactCache.
//
// Layout (one file per entry, sharded by kind):
//
//   <dir>/v<schema>/de/<key>.bin    decompile artifacts
//   <dir>/v<schema>/pa/<key>.bin    partition artifacts
//
// The schema version appears twice: in the directory prefix, so bumping
// kCacheSchemaVersion makes every stale-format entry an automatic miss
// without any migration code, and in each entry header, so a file dropped
// into the wrong tree is still rejected.  Entry format:
//
//   "B2HC" | u32 schema | str kind | u64 fnv1a64(payload) | str payload
//
// Durability/robustness contract (tested in test_artifact_cache):
//   * writes are temp-file + atomic-rename, so a crashed or concurrent
//     writer never leaves a half-written entry visible;
//   * Store() skips keys that already exist — entries are content-addressed,
//     so two processes racing on one key write identical bytes anyway;
//   * any read problem (missing, truncated, bad magic/version/checksum)
//     is a miss, never an error;
//   * when max_bytes > 0, writes trigger LRU-by-mtime eviction down to the
//     budget (loads touch mtime), and trees left by older schema versions
//     are garbage too.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace b2h::explore {

/// Cache generation: serialized layout AND result semantics.  Artifact
/// keys hash a stage's *inputs*; the stage implementations themselves are
/// an implicit input that only changes with the code.  Bump this whenever
/// either changes — the entry layout, or any result-affecting stage
/// (recovery passes, strategies, estimator, synthesis/area models) — so
/// every stale entry self-invalidates (it lives in a different v<N> tree
/// AND fails the header check) instead of replaying pre-change results.
/// The CI artifact-cache key embeds this number for the same reason.
inline constexpr std::uint32_t kCacheSchemaVersion = 1;

/// Entry kinds (directory shards).
inline constexpr std::string_view kDecompileKind = "de";
inline constexpr std::string_view kPartitionKind = "pa";

/// Cache-dir resolution: the B2H_CACHE_DIR environment variable overrides
/// any configured directory (the CI cache-warm gate points whole processes
/// at a persisted cache this way).  Empty result = disk tier disabled.
[[nodiscard]] std::string ResolveCacheDir(std::string configured);

class DiskStore {
 public:
  struct Options {
    std::string directory;
    /// Size budget for auto-eviction; 0 = unbounded (gc only on demand).
    /// Writes that push the store over the budget evict down to a 90%
    /// low-water mark, so a full store doesn't rescan the tree per write.
    std::uint64_t max_bytes = 0;
  };

  struct Stats {
    std::size_t decompile_entries = 0;
    std::size_t partition_entries = 0;
    std::uint64_t entry_bytes = 0;        ///< current-schema entries
    std::size_t stale_files = 0;          ///< other-schema trees + temp junk
    std::uint64_t stale_bytes = 0;
    std::uint64_t total_bytes = 0;
  };

  explicit DiskStore(Options options);

  [[nodiscard]] const std::string& directory() const {
    return options_.directory;
  }
  [[nodiscard]] std::uint64_t max_bytes() const { return options_.max_bytes; }

  /// Entry payload, or nullopt on miss/corruption.  A hit refreshes the
  /// entry's mtime (LRU).
  [[nodiscard]] std::optional<std::string> Load(std::string_view kind,
                                                const std::string& key);

  /// Cheap existence probe (one stat) — lets callers skip serializing a
  /// payload that Store() would discard anyway.
  [[nodiscard]] bool Contains(std::string_view kind,
                              const std::string& key) const;

  /// Remove one entry (corrupt-entry reclamation).  Quiet on absence.
  void Remove(std::string_view kind, const std::string& key);

  /// Write an entry; skips the write when the key already exists (entries
  /// are content-addressed, so a racing writer's bytes are identical).
  /// Returns true only when this call actually wrote the entry.
  bool Store(std::string_view kind, const std::string& key,
             std::string_view payload);

  [[nodiscard]] Stats ComputeStats() const;

  /// Evict least-recently-used entries until the store fits `max_bytes`
  /// (0 = only remove stale-schema trees and temp junk).  Returns the
  /// number of files removed.  Only the store's own v<N> trees are ever
  /// touched — foreign files in a shared directory are left alone.
  std::size_t Gc(std::uint64_t max_bytes);

  /// Remove every entry, including stale-schema trees (but never foreign
  /// files — see Gc).
  void Clear();

 private:
  [[nodiscard]] std::filesystem::path EntryPath(std::string_view kind,
                                                const std::string& key) const;
  void MaybeAutoGc();

  Options options_;
  std::filesystem::path root_;          ///< <dir>
  std::filesystem::path version_root_;  ///< <dir>/v<schema>
  std::mutex gc_mutex_;
  /// Running size estimate so per-store auto-gc doesn't rescan the tree;
  /// refreshed by every full Gc().
  std::uint64_t approx_bytes_ = 0;
  bool approx_valid_ = false;
};

}  // namespace b2h::explore
