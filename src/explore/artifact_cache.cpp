#include "explore/artifact_cache.hpp"

#include <cstring>

namespace b2h::explore {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

ContentHasher& ContentHasher::Bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= kFnvPrime;
  }
  return *this;
}

ContentHasher& ContentHasher::U64(std::uint64_t value) {
  unsigned char encoded[8];
  for (int i = 0; i < 8; ++i) {
    encoded[i] = static_cast<unsigned char>(value >> (i * 8));
  }
  return Bytes(encoded, sizeof encoded);
}

ContentHasher& ContentHasher::F64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return U64(bits);
}

ContentHasher& ContentHasher::Str(std::string_view text) {
  // Length prefix: "ab"+"c" must not collide with "a"+"bc".
  U64(text.size());
  return Bytes(text.data(), text.size());
}

std::string ContentHasher::Hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(state_));
  return buffer;
}

std::string HashBinary(const mips::SoftBinary& binary) {
  ContentHasher hasher;
  hasher.U64(binary.entry);
  hasher.U64(binary.text.size());
  hasher.Bytes(binary.text.data(), binary.text.size() * sizeof(std::uint32_t));
  hasher.U64(binary.data.size());
  hasher.Bytes(binary.data.data(), binary.data.size());
  hasher.U64(binary.symbols.size());
  for (const auto& [name, address] : binary.symbols) {
    hasher.Str(name).U64(address);
  }
  return hasher.Hex();
}

std::string HashPlatform(const partition::Platform& platform) {
  ContentHasher hasher;
  const auto& cpu = platform.cpu;
  hasher.F64(cpu.clock_mhz)
      .F64(cpu.base_watts)
      .F64(cpu.watts_per_mhz)
      .F64(cpu.idle_fraction);
  const auto& model = cpu.cycle_model;
  hasher.U64(model.base)
      .U64(model.load_extra)
      .U64(model.mult_extra)
      .U64(model.div_extra)
      .U64(model.taken_extra);
  const auto& fpga = platform.fpga;
  hasher.F64(fpga.capacity_gates)
      .F64(fpga.usable_fraction)
      .F64(fpga.clock_mhz_cap)
      .F64(fpga.static_watts)
      .F64(fpga.watts_per_kgate_100mhz);
  const auto& comm = platform.comm;
  hasher.F64(comm.setup_cycles)
      .F64(comm.cycles_per_word)
      .F64(comm.bus_penalty_cycles);
  return hasher.Hex();
}

std::string HashPartitionOptions(const partition::PartitionOptions& options) {
  ContentHasher hasher;
  hasher.F64(options.coverage_target)
      .U64(options.enable_alias_step ? 1 : 0)
      .U64(options.enable_greedy_step ? 1 : 0);
  const auto& schedule = options.synth.schedule;
  hasher.F64(schedule.clock_ns)
      .U64(schedule.mem_ports)
      .U64(schedule.max_mults)
      .U64(schedule.max_divs)
      .U64(schedule.enable_pipelining ? 1 : 0)
      .U64(schedule.enable_chaining ? 1 : 0);
  const auto& library = options.synth.library;
  hasher.F64(library.gates_per_lut)
      .F64(library.gates_per_ff)
      .F64(library.gates_per_mult18)
      .F64(library.add_base_ns)
      .F64(library.mul_ns);
  hasher.U64(options.synth.emit_vhdl ? 1 : 0);
  return hasher.Hex();
}

std::shared_ptr<const DecompileArtifact> ArtifactCache::FindDecompile(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = decompiles_.find(key);
  if (it == decompiles_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const PartitionArtifact> ArtifactCache::FindPartition(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void ArtifactCache::PutDecompile(
    const std::string& key, std::shared_ptr<const DecompileArtifact> artifact) {
  const std::lock_guard<std::mutex> lock(mutex_);
  decompiles_[key] = std::move(artifact);
  stats_.entries = decompiles_.size() + partitions_.size();
}

void ArtifactCache::PutPartition(
    const std::string& key, std::shared_ptr<const PartitionArtifact> artifact) {
  const std::lock_guard<std::mutex> lock(mutex_);
  partitions_[key] = std::move(artifact);
  stats_.entries = decompiles_.size() + partitions_.size();
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ArtifactCache::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  decompiles_.clear();
  partitions_.clear();
  stats_ = Stats{};
}

}  // namespace b2h::explore
