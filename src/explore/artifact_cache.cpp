#include "explore/artifact_cache.hpp"

#include <cstring>

#include "obs/obs.hpp"
#include "support/serialize.hpp"

namespace b2h::explore {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Process-wide cache tier counters, resolved once (instruments are
/// never destroyed, see obs::Registry).  Mirrors the per-cache Stats so
/// the serve `metrics` endpoint and traced sweeps see tier traffic
/// without plumbing a cache handle around.
struct TierMetrics {
  obs::Counter& memory_hits;
  obs::Counter& disk_hits;
  obs::Counter& misses;
  obs::Counter& disk_stores;
  obs::Counter& disk_bad_entries;

  static TierMetrics& Get() {
    auto& registry = obs::Registry::Global();
    static TierMetrics metrics{registry.counter("cache.memory_hits"),
                               registry.counter("cache.disk_hits"),
                               registry.counter("cache.misses"),
                               registry.counter("cache.disk_stores"),
                               registry.counter("cache.disk_bad_entries")};
    return metrics;
  }
};

const char* TierName(HitTier tier) {
  switch (tier) {
    case HitTier::kMemory: return "memory";
    case HitTier::kDisk: return "disk";
    case HitTier::kMiss: break;
  }
  return "miss";
}

using support::BinaryReader;
using support::BinaryWriter;

// Defensive ceiling on decoded container sizes.  The store's checksum makes
// a lying length prefix effectively impossible; this keeps a hand-crafted
// payload from requesting a giant allocation anyway.
constexpr std::uint64_t kMaxItems = 1u << 20;

void EncodeStatus(BinaryWriter& out, const Status& status) {
  out.U32(static_cast<std::uint32_t>(status.kind()));
  out.Str(status.message());
}

bool DecodeStatus(BinaryReader& in, Status* status) {
  std::uint32_t kind = 0;
  std::string message;
  if (!in.U32(&kind) || kind > static_cast<std::uint32_t>(ErrorKind::kParse) ||
      !in.Str(&message)) {
    return false;
  }
  *status = kind == 0 ? Status::Ok()
                      : Status::Error(static_cast<ErrorKind>(kind),
                                      std::move(message));
  return true;
}

void EncodeRunResult(BinaryWriter& out, const mips::RunResult& run) {
  out.I64(run.return_value);
  out.U64(run.instructions);
  out.U64(run.cycles);
  out.U8(static_cast<std::uint8_t>(run.reason));
  out.Str(run.fault_message);
  out.VecU64(run.profile.instr_count);
  out.VecU64(run.profile.cycle_count);
  out.VecU64(run.profile.branch_taken);
  out.VecU64(run.profile.branch_not_taken);
  out.U64(run.profile.total_instructions);
  out.U64(run.profile.total_cycles);
}

bool DecodeRunResult(BinaryReader& in, mips::RunResult* run) {
  std::int64_t return_value = 0;
  std::uint8_t reason = 0;
  if (!in.I64(&return_value) || !in.U64(&run->instructions) ||
      !in.U64(&run->cycles) || !in.U8(&reason) ||
      reason > static_cast<std::uint8_t>(mips::HaltReason::kFault) ||
      !in.Str(&run->fault_message) || !in.VecU64(&run->profile.instr_count) ||
      !in.VecU64(&run->profile.cycle_count) ||
      !in.VecU64(&run->profile.branch_taken) ||
      !in.VecU64(&run->profile.branch_not_taken) ||
      !in.U64(&run->profile.total_instructions) ||
      !in.U64(&run->profile.total_cycles)) {
    return false;
  }
  run->return_value = static_cast<std::int32_t>(return_value);
  run->reason = static_cast<mips::HaltReason>(reason);
  return true;
}

void EncodeEstimate(BinaryWriter& out, const partition::AppEstimate& est) {
  out.F64(est.sw_time);
  out.F64(est.partitioned_time);
  out.F64(est.speedup);
  out.F64(est.avg_kernel_speedup);
  out.F64(est.sw_energy);
  out.F64(est.partitioned_energy);
  out.F64(est.energy_savings);
  out.F64(est.area_gates);
  out.U64(est.kernels.size());
  for (const partition::KernelEstimate& k : est.kernels) {
    out.Str(k.name);
    out.U64(k.sw_cycles);
    out.U64(k.hw_cycles);
    out.U64(k.invocations);
    out.U64(k.comm_words);
    out.U64(k.mem_accesses);
    out.Bool(k.arrays_resident);
    out.F64(k.hw_clock_mhz);
    out.F64(k.area_gates);
    out.F64(k.sw_time);
    out.F64(k.hw_time);
    out.F64(k.kernel_speedup);
  }
}

bool DecodeEstimate(BinaryReader& in, partition::AppEstimate* est) {
  std::uint64_t num_kernels = 0;
  if (!in.F64(&est->sw_time) || !in.F64(&est->partitioned_time) ||
      !in.F64(&est->speedup) || !in.F64(&est->avg_kernel_speedup) ||
      !in.F64(&est->sw_energy) || !in.F64(&est->partitioned_energy) ||
      !in.F64(&est->energy_savings) || !in.F64(&est->area_gates) ||
      !in.U64(&num_kernels) || num_kernels > kMaxItems) {
    return false;
  }
  est->kernels.resize(static_cast<std::size_t>(num_kernels));
  for (partition::KernelEstimate& k : est->kernels) {
    if (!in.Str(&k.name) || !in.U64(&k.sw_cycles) || !in.U64(&k.hw_cycles) ||
        !in.U64(&k.invocations) || !in.U64(&k.comm_words) ||
        !in.U64(&k.mem_accesses) || !in.Bool(&k.arrays_resident) ||
        !in.F64(&k.hw_clock_mhz) || !in.F64(&k.area_gates) ||
        !in.F64(&k.sw_time) || !in.F64(&k.hw_time) ||
        !in.F64(&k.kernel_speedup)) {
      return false;
    }
  }
  return true;
}

void EncodeArea(BinaryWriter& out, const synth::AreaReport& area) {
  out.U64(area.units.size());
  for (const synth::FuInstance& unit : area.units) {
    out.U8(static_cast<std::uint8_t>(unit.cls));
    out.U32(unit.width);
    out.U32(unit.ops_mapped);
    out.F64(unit.gates);
  }
  out.U32(area.registers);
  out.U32(area.register_bits);
  out.U32(area.fsm_states);
  out.U32(area.mult_blocks);
  out.F64(area.fu_gates);
  out.F64(area.register_gates);
  out.F64(area.mux_gates);
  out.F64(area.fsm_gates);
  out.F64(area.total_gates);
}

bool DecodeArea(BinaryReader& in, synth::AreaReport* area) {
  std::uint64_t num_units = 0;
  if (!in.U64(&num_units) || num_units > kMaxItems) return false;
  area->units.resize(static_cast<std::size_t>(num_units));
  for (synth::FuInstance& unit : area->units) {
    std::uint8_t cls = 0;
    if (!in.U8(&cls) ||
        cls > static_cast<std::uint8_t>(synth::FuClass::kNone) ||
        !in.U32(&unit.width) || !in.U32(&unit.ops_mapped) ||
        !in.F64(&unit.gates)) {
      return false;
    }
    unit.cls = static_cast<synth::FuClass>(cls);
  }
  return in.U32(&area->registers) && in.U32(&area->register_bits) &&
         in.U32(&area->fsm_states) && in.U32(&area->mult_blocks) &&
         in.F64(&area->fu_gates) && in.F64(&area->register_gates) &&
         in.F64(&area->mux_gates) && in.F64(&area->fsm_gates) &&
         in.F64(&area->total_gates);
}

void EncodePartitionResult(BinaryWriter& out,
                           const partition::PartitionResult& result) {
  out.U64(result.hw.size());
  for (const partition::SelectedRegion& region : result.hw) {
    out.U8(static_cast<std::uint8_t>(region.selected_by));
    out.U64(region.sw_cycles);
    out.U64(region.invocations);
    out.U64(region.comm_words);
    out.U64(region.mem_accesses);
    out.Bool(region.arrays_resident);
    out.U64(region.alias_regions.size());
    for (const int id : region.alias_regions) out.I64(id);
    out.Str(region.synthesized.region.name);
    out.U64(region.synthesized.hw_cycles);
    out.F64(region.synthesized.clock_mhz);
    out.Str(region.synthesized.vhdl);
    EncodeArea(out, region.synthesized.area);
  }
  out.U64(result.rejected.size());
  for (const std::string& reason : result.rejected) out.Str(reason);
  out.F64(result.area_used_gates);
  out.F64(result.area_budget_gates);
  out.U64(result.total_sw_cycles);
  out.F64(result.loop_coverage);
}

bool DecodePartitionResult(BinaryReader& in,
                           partition::PartitionResult* result) {
  std::uint64_t num_regions = 0;
  if (!in.U64(&num_regions) || num_regions > kMaxItems) return false;
  result->hw.resize(static_cast<std::size_t>(num_regions));
  for (partition::SelectedRegion& region : result->hw) {
    std::uint8_t selected_by = 0;
    std::uint64_t num_alias = 0;
    if (!in.U8(&selected_by) ||
        selected_by >
            static_cast<std::uint8_t>(partition::SelectedBy::kAnnealing) ||
        !in.U64(&region.sw_cycles) || !in.U64(&region.invocations) ||
        !in.U64(&region.comm_words) || !in.U64(&region.mem_accesses) ||
        !in.Bool(&region.arrays_resident) || !in.U64(&num_alias) ||
        num_alias > kMaxItems) {
      return false;
    }
    region.selected_by = static_cast<partition::SelectedBy>(selected_by);
    region.alias_regions.resize(static_cast<std::size_t>(num_alias));
    for (int& id : region.alias_regions) {
      std::int64_t value = 0;
      if (!in.I64(&value)) return false;
      id = static_cast<int>(value);
    }
    // Hydrated regions carry no live IR: function/loop/block pointers stay
    // null, the schedule stays empty.  Name, metrics, area, and VHDL are
    // everything downstream reporting consumes.
    if (!in.Str(&region.synthesized.region.name) ||
        !in.U64(&region.synthesized.hw_cycles) ||
        !in.F64(&region.synthesized.clock_mhz) ||
        !in.Str(&region.synthesized.vhdl) ||
        !DecodeArea(in, &region.synthesized.area)) {
      return false;
    }
  }
  std::uint64_t num_rejected = 0;
  if (!in.U64(&num_rejected) || num_rejected > kMaxItems) return false;
  result->rejected.resize(static_cast<std::size_t>(num_rejected));
  for (std::string& reason : result->rejected) {
    if (!in.Str(&reason)) return false;
  }
  return in.F64(&result->area_used_gates) &&
         in.F64(&result->area_budget_gates) &&
         in.U64(&result->total_sw_cycles) && in.F64(&result->loop_coverage);
}

}  // namespace

ContentHasher& ContentHasher::Bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= kFnvPrime;
  }
  return *this;
}

ContentHasher& ContentHasher::U64(std::uint64_t value) {
  unsigned char encoded[8];
  for (int i = 0; i < 8; ++i) {
    encoded[i] = static_cast<unsigned char>(value >> (i * 8));
  }
  return Bytes(encoded, sizeof encoded);
}

ContentHasher& ContentHasher::F64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return U64(bits);
}

ContentHasher& ContentHasher::Str(std::string_view text) {
  // Length prefix: "ab"+"c" must not collide with "a"+"bc".
  U64(text.size());
  return Bytes(text.data(), text.size());
}

std::string ContentHasher::Hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(state_));
  return buffer;
}

std::string HashBinary(const mips::SoftBinary& binary) {
  ContentHasher hasher;
  hasher.U64(binary.entry);
  hasher.U64(binary.text.size());
  hasher.Bytes(binary.text.data(), binary.text.size() * sizeof(std::uint32_t));
  hasher.U64(binary.data.size());
  hasher.Bytes(binary.data.data(), binary.data.size());
  hasher.U64(binary.symbols.size());
  for (const auto& [name, address] : binary.symbols) {
    hasher.Str(name).U64(address);
  }
  return hasher.Hex();
}

std::string HashPlatform(const partition::Platform& platform) {
  ContentHasher hasher;
  const auto& cpu = platform.cpu;
  hasher.F64(cpu.clock_mhz)
      .F64(cpu.base_watts)
      .F64(cpu.watts_per_mhz)
      .F64(cpu.idle_fraction);
  const auto& model = cpu.cycle_model;
  hasher.U64(model.base)
      .U64(model.load_extra)
      .U64(model.mult_extra)
      .U64(model.div_extra)
      .U64(model.taken_extra);
  const auto& fpga = platform.fpga;
  hasher.F64(fpga.capacity_gates)
      .F64(fpga.usable_fraction)
      .F64(fpga.clock_mhz_cap)
      .F64(fpga.static_watts)
      .F64(fpga.watts_per_kgate_100mhz);
  const auto& comm = platform.comm;
  hasher.F64(comm.setup_cycles)
      .F64(comm.cycles_per_word)
      .F64(comm.bus_penalty_cycles);
  return hasher.Hex();
}

std::string HashPartitionOptions(const partition::PartitionOptions& options) {
  ContentHasher hasher;
  hasher.F64(options.coverage_target)
      .U64(options.enable_alias_step ? 1 : 0)
      .U64(options.enable_greedy_step ? 1 : 0);
  const auto& schedule = options.synth.schedule;
  hasher.F64(schedule.clock_ns)
      .U64(schedule.mem_ports)
      .U64(schedule.max_mults)
      .U64(schedule.max_divs)
      .U64(schedule.enable_pipelining ? 1 : 0)
      .U64(schedule.enable_chaining ? 1 : 0);
  const auto& library = options.synth.library;
  hasher.F64(library.gates_per_lut)
      .F64(library.gates_per_ff)
      .F64(library.gates_per_mult18)
      .F64(library.add_base_ns)
      .F64(library.mul_ns);
  hasher.U64(options.synth.emit_vhdl ? 1 : 0);
  return hasher.Hex();
}

// ------------------------------------------------ artifact (de)serialization

std::string EncodeDecompileArtifact(const DecompileArtifact& artifact) {
  BinaryWriter out;
  EncodeStatus(out, artifact.status);
  out.Bool(artifact.software_run != nullptr);
  if (artifact.software_run != nullptr) {
    EncodeRunResult(out, *artifact.software_run);
  }
  // Deliberately no IR: see the header contract — the profile is enough to
  // rebuild the program without re-simulating.
  return out.Take();
}

std::shared_ptr<const DecompileArtifact> DecodeDecompileArtifact(
    std::string_view payload) {
  BinaryReader in(payload);
  auto artifact = std::make_shared<DecompileArtifact>();
  bool has_run = false;
  if (!DecodeStatus(in, &artifact->status) || !in.Bool(&has_run)) {
    return nullptr;
  }
  if (has_run) {
    auto run = std::make_shared<mips::RunResult>();
    if (!DecodeRunResult(in, run.get())) return nullptr;
    artifact->software_run = std::move(run);
  }
  if (!in.AtEnd()) return nullptr;
  return artifact;
}

std::string EncodePartitionArtifact(const PartitionArtifact& artifact) {
  BinaryWriter out;
  EncodeStatus(out, artifact.status);
  EncodeEstimate(out, artifact.estimate);
  EncodePartitionResult(out, artifact.partition);
  return out.Take();
}

std::shared_ptr<const PartitionArtifact> DecodePartitionArtifact(
    std::string_view payload) {
  BinaryReader in(payload);
  auto artifact = std::make_shared<PartitionArtifact>();
  if (!DecodeStatus(in, &artifact->status) ||
      !DecodeEstimate(in, &artifact->estimate) ||
      !DecodePartitionResult(in, &artifact->partition) || !in.AtEnd()) {
    return nullptr;
  }
  return artifact;
}

// --------------------------------------------------------- two-tier cache

ArtifactCache::ArtifactCache(DiskStore::Options disk) {
  if (!disk.directory.empty()) {
    disk_ = std::make_unique<DiskStore>(std::move(disk));
  }
}

// The disk tier is accessed OUTSIDE mutex_ throughout: DiskStore is
// internally thread-safe, artifacts are immutable, and holding the cache
// lock across file reads/writes (or a Store-triggered eviction scan) would
// stall every concurrent lookup on a shared cache.  The worst a race costs
// is decoding or encoding the same content twice.

template <typename Artifact>
std::shared_ptr<const Artifact> ArtifactCache::FindInTiers(
    std::unordered_map<std::string, std::shared_ptr<const Artifact>>& entries,
    std::string_view kind,
    std::shared_ptr<const Artifact> (*decode)(std::string_view),
    const std::string& key, HitTier* tier) {
  TierMetrics& metrics = TierMetrics::Get();
  obs::ScopedSpan span("cache.find", "cache");
  span.Arg("kind", kind);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries.find(key);
    if (it != entries.end()) {
      ++stats_.memory_hits;
      metrics.memory_hits.Add();
      span.Arg("tier", TierName(HitTier::kMemory));
      if (tier != nullptr) *tier = HitTier::kMemory;
      return it->second;
    }
  }
  if (disk_ != nullptr) {
    if (auto payload = disk_->Load(kind, key)) {
      if (auto artifact = decode(*payload)) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] = entries.emplace(key, artifact);
        if (!inserted) artifact = it->second;  // racing promotion won
        stats_.entries = decompiles_.size() + partitions_.size();
        ++stats_.disk_hits;
        metrics.disk_hits.Add();
        span.Arg("tier", TierName(HitTier::kDisk));
        if (tier != nullptr) *tier = HitTier::kDisk;
        return artifact;
      }
      // Valid envelope, undecodable payload: a plain miss — and reclaim
      // the file so the recomputed artifact can be persisted again.
      disk_->Remove(kind, key);
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_bad_entries;
      metrics.disk_bad_entries.Add();
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  metrics.misses.Add();
  span.Arg("tier", TierName(HitTier::kMiss));
  if (tier != nullptr) *tier = HitTier::kMiss;
  return nullptr;
}

template <typename Artifact>
void ArtifactCache::PutInTiers(
    std::unordered_map<std::string, std::shared_ptr<const Artifact>>& entries,
    std::string_view kind, std::string (*encode)(const Artifact&),
    const std::string& key, std::shared_ptr<const Artifact> artifact) {
  // Existence probe before encoding: re-puts of an already-persisted key
  // (e.g. the Explorer refreshing a rehydrated artifact) skip the
  // serialization work entirely, not just the write.
  bool stored = false;
  if (disk_ != nullptr && artifact != nullptr && !disk_->Contains(kind, key)) {
    obs::ScopedSpan span("cache.store", "cache");
    span.Arg("kind", kind);
    stored = disk_->Store(kind, key, encode(*artifact));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stored) {
    ++stats_.disk_stores;
    TierMetrics::Get().disk_stores.Add();
  }
  entries[key] = std::move(artifact);
  stats_.entries = decompiles_.size() + partitions_.size();
}

std::shared_ptr<const DecompileArtifact> ArtifactCache::FindDecompile(
    const std::string& key, HitTier* tier) {
  return FindInTiers(decompiles_, kDecompileKind, &DecodeDecompileArtifact,
                     key, tier);
}

std::shared_ptr<const PartitionArtifact> ArtifactCache::FindPartition(
    const std::string& key, HitTier* tier) {
  return FindInTiers(partitions_, kPartitionKind, &DecodePartitionArtifact,
                     key, tier);
}

void ArtifactCache::PutDecompile(
    const std::string& key, std::shared_ptr<const DecompileArtifact> artifact) {
  PutInTiers(decompiles_, kDecompileKind, &EncodeDecompileArtifact, key,
             artifact);
  // Release single-flight waiters AFTER the memory tier holds the artifact,
  // so a waiter that re-probes instead of holding the future still hits.
  // The promise is fulfilled outside the lock — waiters wake straight into
  // their own work, and a double Put (job + any later refresh) finds the
  // registry entry already gone.
  std::shared_ptr<InFlightDecompile> flight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = in_flight_decompiles_.find(key);
    if (it != in_flight_decompiles_.end()) {
      flight = std::move(it->second);
      in_flight_decompiles_.erase(it);
    }
  }
  if (flight != nullptr) flight->promise.set_value(std::move(artifact));
}

bool ArtifactCache::LeadDecompile(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (decompiles_.count(key) != 0) return false;  // published: waiters hit
  const auto [it, inserted] = in_flight_decompiles_.try_emplace(key);
  if (inserted) {
    auto flight = std::make_shared<InFlightDecompile>();
    flight->future = flight->promise.get_future().share();
    it->second = std::move(flight);
  }
  return inserted;
}

std::shared_ptr<const DecompileArtifact> ArtifactCache::WaitDecompile(
    const std::string& key) {
  DecompileFlight future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = decompiles_.find(key); it != decompiles_.end()) {
      return it->second;
    }
    const auto it = in_flight_decompiles_.find(key);
    if (it == in_flight_decompiles_.end()) return nullptr;
    future = it->second->future;
  }
  obs::ScopedSpan span("cache.wait_decompile", "cache");
  return future.get();
}

void ArtifactCache::PutPartition(
    const std::string& key, std::shared_ptr<const PartitionArtifact> artifact) {
  PutInTiers(partitions_, kPartitionKind, &EncodePartitionArtifact, key,
             std::move(artifact));
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ArtifactCache::Clear() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    decompiles_.clear();
    partitions_.clear();
    stats_ = Stats{};
  }
  // Pooled candidate sets point into programs owned by the memory tier;
  // dropping the tier must drop the pool too (its own mutex, so outside
  // ours).  Cumulative pool counters survive by design.
  candidate_pool_->Clear();
}

}  // namespace b2h::explore
