#include "explore/disk_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <system_error>
#include <vector>

#include "obs/obs.hpp"
#include "support/fs.hpp"
#include "support/serialize.hpp"

namespace b2h::explore {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'B', '2', 'H', 'C'};

std::string VersionDirName() {
  return "v" + std::to_string(kCacheSchemaVersion);
}

/// True for "v<digits>" — the only directory names this store ever
/// creates.  Gc/Clear must not touch anything else: a cache dir pointed at
/// an existing directory (WithCacheDir("."), a mistyped --dir) would
/// otherwise have its unrelated contents deleted.
bool IsVersionDirName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

std::string ResolveCacheDir(std::string configured) {
  const char* env = std::getenv("B2H_CACHE_DIR");
  if (env != nullptr && *env != '\0') return env;
  return configured;
}

DiskStore::DiskStore(Options options)
    : options_(std::move(options)),
      root_(options_.directory),
      version_root_(root_ / VersionDirName()) {}

fs::path DiskStore::EntryPath(std::string_view kind,
                              const std::string& key) const {
  return version_root_ / std::string(kind) / (key + ".bin");
}

std::optional<std::string> DiskStore::Load(std::string_view kind,
                                           const std::string& key) {
  const fs::path path = EntryPath(kind, key);
  const auto file = support::ReadFile(path);
  if (!file.has_value()) return std::nullopt;
  support::BinaryReader reader(
      std::string_view(*file).substr(
          std::min<std::size_t>(file->size(), sizeof kMagic)));
  std::uint32_t version = 0;
  std::string stored_kind;
  std::uint64_t checksum = 0;
  std::string payload;
  if (file->size() < sizeof kMagic ||
      file->compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0 ||
      !reader.U32(&version) || version != kCacheSchemaVersion ||
      !reader.Str(&stored_kind) || stored_kind != kind ||
      !reader.U64(&checksum) || !reader.Str(&payload) || !reader.AtEnd() ||
      support::Fnv1a64(payload) != checksum) {
    // An invalid entry is a miss — AND it must not be permanent: Store()
    // skips existing paths, so leaving the bad file in place would make
    // this key uncacheable forever.  Removing it lets the recomputed
    // artifact be persisted again.
    support::RemoveFileQuiet(path);
    return std::nullopt;
  }
  support::TouchNow(path);  // LRU: a hit makes the entry recently used
  return payload;
}

bool DiskStore::Contains(std::string_view kind, const std::string& key) const {
  std::error_code ec;
  return fs::exists(EntryPath(kind, key), ec);
}

void DiskStore::Remove(std::string_view kind, const std::string& key) {
  support::RemoveFileQuiet(EntryPath(kind, key));
}

bool DiskStore::Store(std::string_view kind, const std::string& key,
                      std::string_view payload) {
  const fs::path path = EntryPath(kind, key);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Content-addressed: an existing entry for this key holds these bytes
    // already (or a racing writer's identical ones).
    return false;
  }
  support::BinaryWriter writer;
  std::string entry(kMagic, sizeof kMagic);
  writer.U32(kCacheSchemaVersion);
  writer.Str(kind);
  writer.U64(support::Fnv1a64(payload));
  writer.Str(payload);
  entry += writer.buffer();
  if (!support::AtomicWriteFile(path, entry)) return false;
  {
    const std::lock_guard<std::mutex> lock(gc_mutex_);
    if (approx_valid_) approx_bytes_ += entry.size();
  }
  MaybeAutoGc();
  return true;
}

DiskStore::Stats DiskStore::ComputeStats() const {
  Stats stats;
  const fs::path de_dir = version_root_ / std::string(kDecompileKind);
  const fs::path pa_dir = version_root_ / std::string(kPartitionKind);
  for (const support::FileInfo& info : support::ListFilesRecursive(root_)) {
    stats.total_bytes += info.size;
    const std::string name = info.path.filename().string();
    const bool is_entry = name.size() > 4 &&
                          name.compare(name.size() - 4, 4, ".bin") == 0;
    const fs::path parent = info.path.parent_path();
    if (is_entry && parent == de_dir) {
      ++stats.decompile_entries;
      stats.entry_bytes += info.size;
    } else if (is_entry && parent == pa_dir) {
      ++stats.partition_entries;
      stats.entry_bytes += info.size;
    } else {
      ++stats.stale_files;  // other-schema trees, temp files, foreign junk
      stats.stale_bytes += info.size;
    }
  }
  return stats;
}

std::size_t DiskStore::Gc(std::uint64_t max_bytes) {
  const std::lock_guard<std::mutex> lock(gc_mutex_);
  std::size_t removed = 0;
  std::error_code ec;

  // 1. Stale-schema trees self-invalidated at lookup time; reclaim them.
  // Only the store's own v<N> directories are touched — anything else in
  // the root is foreign and left alone.  (Manual increment: the walk must
  // survive a concurrent process mutating the shared directory.)
  fs::directory_iterator it(
      root_, fs::directory_options::skip_permission_denied, ec);
  const fs::directory_iterator end;
  while (!ec && it != end) {
    const std::string name = it->path().filename().string();
    if (IsVersionDirName(name) && name != VersionDirName()) {
      std::error_code remove_ec;
      removed += static_cast<std::size_t>(
          fs::remove_all(it->path(), remove_ec));
    }
    it.increment(ec);
  }

  // 2. Temp junk from crashed writers, then LRU-by-mtime eviction of
  // current entries down to the budget.
  std::vector<support::FileInfo> files =
      support::ListFilesRecursive(version_root_);
  std::erase_if(files, [&](const support::FileInfo& info) {
    const std::string name = info.path.filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".bin") == 0) {
      return false;
    }
    if (support::RemoveFileQuiet(info.path)) ++removed;
    return true;
  });
  std::uint64_t total = 0;
  for (const support::FileInfo& info : files) total += info.size;
  if (max_bytes > 0 && total > max_bytes) {
    std::sort(files.begin(), files.end(),
              [](const support::FileInfo& a, const support::FileInfo& b) {
                if (a.mtime != b.mtime) return a.mtime < b.mtime;
                return a.path < b.path;  // deterministic tie-break
              });
    std::size_t evicted = 0;
    for (const support::FileInfo& info : files) {
      if (total <= max_bytes) break;
      if (support::RemoveFileQuiet(info.path)) {
        total -= info.size;
        ++removed;
        ++evicted;
      }
    }
    if (evicted > 0) {
      obs::Registry::Global().counter("cache.disk_evictions").Add(evicted);
    }
  }
  approx_bytes_ = total;
  approx_valid_ = true;
  return removed;
}

void DiskStore::Clear() {
  const std::lock_guard<std::mutex> lock(gc_mutex_);
  std::error_code ec;
  // Remove only the store's own v<N> trees (every schema version), never
  // foreign contents of a shared directory; then drop the root itself if
  // that left it empty.
  fs::directory_iterator it(
      root_, fs::directory_options::skip_permission_denied, ec);
  const fs::directory_iterator end;
  while (!ec && it != end) {
    if (IsVersionDirName(it->path().filename().string())) {
      std::error_code remove_ec;
      fs::remove_all(it->path(), remove_ec);
    }
    it.increment(ec);
  }
  std::error_code rmdir_ec;
  fs::remove(root_, rmdir_ec);  // non-recursive: only succeeds when empty
  approx_bytes_ = 0;
  approx_valid_ = true;
}

void DiskStore::MaybeAutoGc() {
  if (options_.max_bytes == 0) return;
  bool over_budget = false;
  {
    const std::lock_guard<std::mutex> lock(gc_mutex_);
    if (!approx_valid_) {
      approx_bytes_ = support::DirectoryBytes(version_root_);
      approx_valid_ = true;
    }
    over_budget = approx_bytes_ > options_.max_bytes;
  }
  // Evict to a low-water mark rather than exactly to the budget: stopping
  // at max_bytes would re-trigger a full directory scan + sort on every
  // subsequent Store once the store fills up.
  if (over_budget) Gc(options_.max_bytes - options_.max_bytes / 10);
}

}  // namespace b2h::explore
