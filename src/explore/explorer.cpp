#include "explore/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <sstream>

#include "decomp/pass_manager.hpp"
#include "mips/simulator.hpp"
#include "obs/obs.hpp"
#include "support/json.hpp"
#include "support/parallel_for.hpp"
#include "support/schema.hpp"

namespace b2h::explore {

namespace {

std::string DecompKey(const std::string& binary_hash,
                      const std::string& pipeline,
                      const mips::CycleModel& model,
                      std::uint64_t max_instructions, bool verify) {
  ContentHasher hasher;
  hasher.Str("decompile")
      .Str(binary_hash)
      .Str(pipeline)
      .U64(model.base)
      .U64(model.load_extra)
      .U64(model.mult_extra)
      .U64(model.div_extra)
      .U64(model.taken_extra)
      .U64(max_instructions)
      .U64(verify ? 1 : 0);
  return hasher.Hex();
}

std::string PartitionKey(const std::string& decomp_key,
                         const std::string& platform_hash,
                         const std::string& options_hash,
                         std::string_view strategy,
                         std::string_view objective,
                         std::string_view options_fingerprint) {
  ContentHasher hasher;
  hasher.Str("partition")
      .Str(decomp_key)
      .Str(platform_hash)
      .Str(options_hash)
      .Str(strategy)
      .Str(objective)
      .Str(options_fingerprint);
  return hasher.Hex();
}

}  // namespace

bool Dominates(const ParetoMetrics& a, const ParetoMetrics& b) {
  const bool no_worse = a.speedup >= b.speedup && a.energy <= b.energy &&
                        a.area_gates <= b.area_gates;
  const bool better = a.speedup > b.speedup || a.energy < b.energy ||
                      a.area_gates < b.area_gates;
  return no_worse && better;
}

std::vector<std::size_t> ParetoFrontier(
    const std::vector<ParetoMetrics>& points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && Dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

const ExplorePoint& ExploreResult::At(std::size_t binary, std::size_t platform,
                                      std::size_t strategy,
                                      std::size_t objective) const {
  return points.at(
      ((binary * num_platforms + platform) * num_strategies + strategy) *
          num_objectives +
      objective);
}

Explorer::Explorer(ExplorerConfig config, std::shared_ptr<ArtifactCache> cache)
    : config_(std::move(config)),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<ArtifactCache>()) {}

ExploreResult Explorer::Run(const ExploreSpec& spec) const {
  const obs::Stopwatch wall;
  obs::ScopedSpan sweep_span("explore.sweep", "explore");
  ExploreResult out;
  out.num_binaries = spec.binaries.size();
  out.num_platforms = spec.platforms.size();
  out.num_strategies = spec.strategies.size();
  out.num_objectives = spec.objectives.size();
  const std::size_t num_points = out.num_binaries * out.num_platforms *
                                 out.num_strategies * out.num_objectives;
  out.points.resize(num_points);

  const auto point_index = [&](std::size_t b, std::size_t p, std::size_t s,
                               std::size_t o) {
    return ((b * out.num_platforms + p) * out.num_strategies + s) *
               out.num_objectives +
           o;
  };
  for (std::size_t b = 0; b < out.num_binaries; ++b) {
    for (std::size_t p = 0; p < out.num_platforms; ++p) {
      for (std::size_t s = 0; s < out.num_strategies; ++s) {
        for (std::size_t o = 0; o < out.num_objectives; ++o) {
          ExplorePoint& point = out.points[point_index(b, p, s, o)];
          point.binary_name = spec.binaries[b].name;
          point.platform_name = spec.platforms[p];
          point.strategy_name = spec.strategies[s];
          point.objective = spec.objectives[o];
        }
      }
    }
  }
  sweep_span.Arg("binaries", static_cast<std::uint64_t>(out.num_binaries))
      .Arg("platforms", static_cast<std::uint64_t>(out.num_platforms))
      .Arg("points", static_cast<std::uint64_t>(num_points));
  if (num_points == 0) {
    out.wall_ms = wall.Millis();
    return out;
  }

  auto manager = decomp::PassManager::FromSpec(config_.pipeline);
  if (!manager.ok()) {
    for (ExplorePoint& point : out.points) point.status = manager.status();
    return out;
  }
  const decomp::PassManager pipeline =
      std::move(manager).take().SetVerify(config_.verify_ir);

  // Resolve every sweep axis up front.
  std::vector<std::optional<partition::Platform>> platforms;
  std::vector<std::string> platform_hashes(out.num_platforms);
  for (std::size_t p = 0; p < out.num_platforms; ++p) {
    platforms.push_back(
        partition::PlatformRegistry::Global().Find(spec.platforms[p]));
    if (platforms[p].has_value()) {
      platform_hashes[p] = HashPlatform(*platforms[p]);
    }
  }
  // One shared instance per strategy name: Strategy::Partition is const and
  // the built-ins are stateless, so instances are shared across workers.
  std::vector<std::unique_ptr<partition::Strategy>> strategies;
  for (const std::string& name : spec.strategies) {
    strategies.push_back(partition::StrategyRegistry::Global().Create(name));
  }
  std::vector<std::string> binary_hashes(out.num_binaries);
  for (std::size_t b = 0; b < out.num_binaries; ++b) {
    if (spec.binaries[b].binary != nullptr) {
      binary_hashes[b] = HashBinary(*spec.binaries[b].binary);
    }
  }
  const std::string options_hash = HashPartitionOptions(config_.partition);

  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_memory_hits = 0;
  std::size_t cache_disk_hits = 0;
  const auto count_hit = [&](HitTier tier) {
    ++cache_hits;
    if (tier == HitTier::kDisk) {
      ++cache_disk_hits;
    } else {
      ++cache_memory_hits;
    }
  };

  // Progress sink: fires at stage boundaries and per finished stage job.
  // cache_hits is only mutated in the serial phases, so reading it from a
  // worker-thread report is race-free.
  const auto report_progress = [&](const char* stage, std::uint64_t done,
                                   std::uint64_t total,
                                   bool finished = false) {
    if (!spec.progress) return;
    ExploreProgress progress;
    progress.stage = stage;
    progress.stage_done = done;
    progress.stage_total = total;
    progress.points_total = num_points;
    progress.cache_hits = cache_hits;
    progress.done = finished;
    spec.progress(progress);
  };

  // ---- Stage A: one profile + decompilation per unique artifact key ------
  // The key covers binary bytes, pipeline spec, and CPU cycle model: clock
  // frequency and FPGA capacity do not affect cycle counts, so the paper's
  // whole platform grid shares one decompilation per binary.
  struct DecompJob {
    std::string key;
    std::size_t binary = 0;
    mips::CycleModel model;
    /// Single-flight outcome (ArtifactCache::LeadDecompile): leaders run
    /// the profile+decompile and publish; non-leaders wait on the cache's
    /// in-flight future instead of duplicating the work.
    bool lead = true;
  };
  std::vector<DecompJob> decomp_jobs;
  std::map<std::string, std::shared_ptr<const DecompileArtifact>> decomp_done;
  std::map<std::string, Status> decomp_failed;
  // decomp key per (binary, platform); empty when unresolvable.
  std::vector<std::string> pair_decomp_key(out.num_binaries *
                                           out.num_platforms);
  // First binary observed per decomp key, for program rehydration of
  // summary-only disk hits (any binary with the key works — the key covers
  // the binary hash).
  std::map<std::string, std::size_t> decomp_key_binary;
  for (std::size_t b = 0; b < out.num_binaries; ++b) {
    for (std::size_t p = 0; p < out.num_platforms; ++p) {
      if (spec.binaries[b].binary == nullptr || !platforms[p].has_value()) {
        continue;
      }
      const std::string key =
          DecompKey(binary_hashes[b], config_.pipeline,
                    platforms[p]->cpu.cycle_model,
                    config_.max_sim_instructions, config_.verify_ir);
      pair_decomp_key[b * out.num_platforms + p] = key;
      decomp_key_binary.emplace(key, b);
      if (decomp_done.count(key) != 0 || decomp_failed.count(key) != 0) {
        continue;
      }
      if (std::any_of(decomp_jobs.begin(), decomp_jobs.end(),
                      [&](const DecompJob& job) { return job.key == key; })) {
        continue;
      }
      HitTier tier = HitTier::kMiss;
      auto cached = cache_->FindDecompile(key, &tier);
      if (cached != nullptr) {
        count_hit(tier);
        if (cached->status.ok()) {
          decomp_done.emplace(key, std::move(cached));
        } else {
          decomp_failed.emplace(key, cached->status);
        }
      } else {
        ++cache_misses;
        decomp_jobs.push_back({key, b, platforms[p]->cpu.cycle_model,
                               cache_->LeadDecompile(key)});
      }
    }
  }

  std::vector<std::shared_ptr<const DecompileArtifact>> decomp_slots(
      decomp_jobs.size());
  std::vector<double> decomp_job_ms(decomp_jobs.size(), 0.0);
  std::atomic<std::size_t> simulations{0};
  std::atomic<std::size_t> decompilations{0};
  // Shared decompile tail of Stage A (fresh simulation) and Stage A'
  // (profile served from the disk cache): run the pass pipeline over the
  // profiled binary and finish the artifact.
  const auto decompile_into =
      [&](DecompileArtifact& artifact,
          const std::shared_ptr<const mips::SoftBinary>& binary,
          std::shared_ptr<const mips::RunResult> run) {
        auto program = pipeline.Run(binary, &run->profile);
        decompilations.fetch_add(1);
        if (!program.ok()) {
          artifact.status = program.status();
          return;
        }
        artifact.software_run = std::move(run);
        artifact.program = std::make_shared<const decomp::DecompiledProgram>(
            std::move(program).take());
      };
  std::atomic<std::uint64_t> decomp_progress{0};
  report_progress("decompile", 0, decomp_jobs.size());
  support::ParallelFor(
      decomp_jobs.size(), config_.threads, [&](std::size_t index) {
        const DecompJob& job = decomp_jobs[index];
        obs::ScopedSpan span("explore.decompile", "explore");
        span.Arg("binary", spec.binaries[job.binary].name);
        const obs::Stopwatch watch;
        const auto finish = [&] {
          decomp_job_ms[index] = watch.Millis();
          report_progress(
              "decompile",
              decomp_progress.fetch_add(1, std::memory_order_relaxed) + 1,
              decomp_jobs.size());
        };
        if (!job.lead) {
          // Another explorer sharing this cache is already running this
          // key (single-flight): block HERE, inside a parallel job — two
          // explorers waiting on each other's keys from their serial
          // epilogues would deadlock — and run no work of our own.
          span.Arg("single_flight", "wait");
          if (auto shared = cache_->WaitDecompile(job.key)) {
            decomp_slots[index] = std::move(shared);
            finish();
            return;
          }
          // The in-flight entry vanished (a Clear() raced the leader's
          // publish): recompute locally like a leader after all.
        }
        auto artifact = std::make_shared<DecompileArtifact>();
        try {
          const auto& binary = spec.binaries[job.binary].binary;
          mips::Simulator simulator(*binary, job.model);
          auto run = std::make_shared<mips::RunResult>(
              simulator.Run({}, config_.max_sim_instructions));
          simulations.fetch_add(1);
          if (run->reason != mips::HaltReason::kReturned) {
            artifact->status = Status::Error(
                ErrorKind::kMalformedBinary,
                "software run did not complete: " + run->fault_message);
          } else {
            decompile_into(*artifact, binary, std::move(run));
          }
        } catch (const std::exception& e) {
          artifact->status = Status::Error(
              ErrorKind::kUnsupported,
              std::string("internal error: ") + e.what());
        }
        // Publish from inside the job, unconditionally: waiters in other
        // explorers unblock the moment the artifact exists, and a failed
        // decompile releases them too (the failure is cached like any
        // other result).
        cache_->PutDecompile(job.key, artifact);
        decomp_slots[index] = std::move(artifact);
        finish();
      });
  // Decompile stage time per key, for point attribution; rehydrations
  // (Stage A') add theirs below.
  std::map<std::string, double> decomp_ms_by_key;
  for (std::size_t index = 0; index < decomp_jobs.size(); ++index) {
    // No PutDecompile here: the jobs published (leaders) or consumed a
    // publication (single-flight waiters) already.
    std::shared_ptr<const DecompileArtifact> artifact =
        std::move(decomp_slots[index]);
    decomp_ms_by_key[decomp_jobs[index].key] = decomp_job_ms[index];
    out.decompile_stage_ms += decomp_job_ms[index];
    if (artifact->status.ok()) {
      decomp_done.emplace(decomp_jobs[index].key, std::move(artifact));
    } else {
      decomp_failed.emplace(decomp_jobs[index].key, artifact->status);
    }
  }

  // ---- Stage B: one partition per unique artifact key --------------------
  // Objective-insensitive strategies (the paper heuristic) collapse all
  // objectives onto one key, so those sweep points are served by a single
  // partition.
  struct PartitionJob {
    std::string key;
    std::size_t binary = 0;
    std::size_t platform = 0;
    std::size_t strategy = 0;
    partition::Objective objective = partition::Objective::kSpeedup;
  };
  std::vector<std::string> point_keys(num_points);
  std::vector<PartitionJob> partition_jobs;
  std::map<std::string, std::shared_ptr<const PartitionArtifact>>
      partition_done;
  std::map<std::string, Status> partition_failed;
  std::set<std::string> partition_cached_keys;  // hits at probe time
  std::set<std::string> partition_queued;
  for (std::size_t b = 0; b < out.num_binaries; ++b) {
    for (std::size_t p = 0; p < out.num_platforms; ++p) {
      for (std::size_t s = 0; s < out.num_strategies; ++s) {
        for (std::size_t o = 0; o < out.num_objectives; ++o) {
          ExplorePoint& point = out.points[point_index(b, p, s, o)];
          if (spec.binaries[b].binary == nullptr) {
            point.status = Status::Error(
                ErrorKind::kMalformedBinary,
                "null binary: " + spec.binaries[b].name);
            continue;
          }
          if (!platforms[p].has_value()) {
            point.status = Status::Error(
                ErrorKind::kUnsupported,
                "unknown platform: " + spec.platforms[p]);
            continue;
          }
          if (strategies[s] == nullptr) {
            point.status = Status::Error(
                ErrorKind::kUnsupported,
                "unknown strategy: " + spec.strategies[s]);
            continue;
          }
          const std::string& decomp_key =
              pair_decomp_key[b * out.num_platforms + p];
          const auto failed = decomp_failed.find(decomp_key);
          if (failed != decomp_failed.end()) {
            point.status = failed->second;
            continue;
          }
          const std::string_view objective_key =
              strategies[s]->objective_sensitive()
                  ? partition::ObjectiveName(spec.objectives[o])
                  : "objective-insensitive";
          const std::string key = PartitionKey(
              decomp_key, platform_hashes[p], options_hash,
              spec.strategies[s], objective_key,
              strategies[s]->OptionsFingerprint(spec.strategy_options));
          point_keys[point_index(b, p, s, o)] = key;
          if (partition_queued.count(key) != 0 ||
              partition_cached_keys.count(key) != 0) {
            continue;
          }
          HitTier tier = HitTier::kMiss;
          auto cached = cache_->FindPartition(key, &tier);
          if (cached != nullptr) {
            count_hit(tier);
            partition_cached_keys.insert(key);
            if (cached->status.ok()) {
              partition_done.emplace(key, std::move(cached));
            } else {
              partition_failed.emplace(key, cached->status);
            }
          } else {
            ++cache_misses;
            partition_queued.insert(key);
            partition_jobs.push_back(
                {key, b, p, s, spec.objectives[o]});
          }
        }
      }
    }
  }

  // ---- Stage A': rehydrate summary-only decompile artifacts --------------
  // A disk-hydrated DecompileArtifact carries the profile but not the IR
  // (see artifact_cache.hpp).  That is enough for every fully-warm point;
  // only when a partition key actually missed does its program get rebuilt
  // here — from the cached profile, skipping the simulation.
  struct RehydrateJob {
    std::string key;
    std::size_t binary = 0;
  };
  std::vector<RehydrateJob> rehydrate_jobs;
  {
    std::set<std::string> queued;
    for (const PartitionJob& job : partition_jobs) {
      const std::string& key =
          pair_decomp_key[job.binary * out.num_platforms + job.platform];
      const auto it = decomp_done.find(key);
      if (it != decomp_done.end() && it->second->program == nullptr &&
          queued.insert(key).second) {
        rehydrate_jobs.push_back({key, decomp_key_binary.at(key)});
      }
    }
  }
  std::vector<std::shared_ptr<DecompileArtifact>> rehydrate_slots(
      rehydrate_jobs.size());
  std::vector<double> rehydrate_job_ms(rehydrate_jobs.size(), 0.0);
  std::atomic<std::size_t> rehydrations{0};
  std::atomic<std::uint64_t> rehydrate_progress{0};
  if (!rehydrate_jobs.empty()) {
    report_progress("rehydrate", 0, rehydrate_jobs.size());
  }
  support::ParallelFor(
      rehydrate_jobs.size(), config_.threads, [&](std::size_t index) {
        const RehydrateJob& job = rehydrate_jobs[index];
        obs::ScopedSpan span("explore.rehydrate", "explore");
        span.Arg("binary", spec.binaries[job.binary].name);
        const obs::Stopwatch watch;
        auto artifact = std::make_shared<DecompileArtifact>();
        rehydrate_slots[index] = artifact;
        try {
          const auto& summary = decomp_done.at(job.key);
          decompile_into(*artifact, spec.binaries[job.binary].binary,
                         summary->software_run);
          // Counted after the decompile so rehydrations can never exceed
          // decompilations_run (the documented "of decompilations_run"
          // relationship), even on an exception path.
          rehydrations.fetch_add(1);
        } catch (const std::exception& e) {
          artifact->status = Status::Error(
              ErrorKind::kUnsupported,
              std::string("internal error: ") + e.what());
        }
        rehydrate_job_ms[index] = watch.Millis();
        report_progress(
            "rehydrate",
            rehydrate_progress.fetch_add(1, std::memory_order_relaxed) + 1,
            rehydrate_jobs.size());
      });
  for (std::size_t index = 0; index < rehydrate_jobs.size(); ++index) {
    const std::string& key = rehydrate_jobs[index].key;
    decomp_ms_by_key[key] += rehydrate_job_ms[index];
    out.decompile_stage_ms += rehydrate_job_ms[index];
    std::shared_ptr<const DecompileArtifact> artifact =
        std::move(rehydrate_slots[index]);
    if (artifact->status.ok()) {
      decomp_done[key] = artifact;
      cache_->PutDecompile(key, artifact);  // refresh the memory tier
    } else {
      // A deterministic recompute of a previously-ok artifact cannot
      // normally fail; degrade gracefully anyway: the dependent partition
      // jobs are dropped and their points report the failure.
      decomp_done.erase(key);
      decomp_failed.emplace(key, artifact->status);
    }
  }
  if (!rehydrate_jobs.empty()) {
    std::vector<PartitionJob> keep;
    keep.reserve(partition_jobs.size());
    for (PartitionJob& job : partition_jobs) {
      const std::string& key =
          pair_decomp_key[job.binary * out.num_platforms + job.platform];
      const auto failed = decomp_failed.find(key);
      if (failed != decomp_failed.end()) {
        partition_failed.emplace(job.key, failed->second);
      } else {
        keep.push_back(std::move(job));
      }
    }
    partition_jobs = std::move(keep);
  }

  std::vector<std::shared_ptr<PartitionArtifact>> partition_slots(
      partition_jobs.size());
  std::vector<double> partition_job_synth_ms(partition_jobs.size(), 0.0);
  std::vector<double> partition_job_ms(partition_jobs.size(), 0.0);
  std::atomic<std::size_t> partitions{0};
  std::atomic<std::uint64_t> partition_progress{0};
  report_progress("partition", 0, partition_jobs.size());
  support::ParallelFor(
      partition_jobs.size(), config_.threads, [&](std::size_t index) {
        const PartitionJob& job = partition_jobs[index];
        auto artifact = std::make_shared<PartitionArtifact>();
        partition_slots[index] = artifact;
        try {
          const std::string& decomp_key =
              pair_decomp_key[job.binary * out.num_platforms + job.platform];
          const auto& base = decomp_done.at(decomp_key);
          partition::StrategyOptions strategy_options = spec.strategy_options;
          strategy_options.objective = job.objective;
          // Every job on the same (program, partition options) pair shares
          // one pooled CandidateSet, so a strategy/objective/seed sweep
          // scans once and synthesizes each candidate once total.
          {
            obs::ScopedSpan synth_span("explore.synth", "partition");
            synth_span.Arg("binary", spec.binaries[job.binary].name);
            const obs::Stopwatch synth_watch;
            strategy_options.candidates = cache_->candidate_pool()->Obtain(
                decomp_key + ":" + options_hash, base->program,
                base->software_run->profile);
            partition_job_synth_ms[index] = synth_watch.Millis();
          }
          obs::ScopedSpan span("explore.partition", "partition");
          span.Arg("strategy", spec.strategies[job.strategy])
              .Arg("platform", spec.platforms[job.platform]);
          const obs::Stopwatch watch;
          auto partitioned = strategies[job.strategy]->Partition(
              *base->program, base->software_run->profile,
              *platforms[job.platform], config_.partition, strategy_options);
          partitions.fetch_add(1);
          partition_job_ms[index] = watch.Millis();
          if (!partitioned.ok()) {
            artifact->status = partitioned.status();
            return;
          }
          artifact->program = base->program;
          artifact->software_run = base->software_run;
          artifact->partition = std::move(partitioned).take();
          artifact->estimate = partition::EstimatePartition(
              artifact->partition, *platforms[job.platform]);
        } catch (const std::exception& e) {
          artifact->status = Status::Error(
              ErrorKind::kUnsupported,
              std::string("internal error: ") + e.what());
        }
        report_progress(
            "partition",
            partition_progress.fetch_add(1, std::memory_order_relaxed) + 1,
            partition_jobs.size());
      });
  struct StageMs {
    double synth_ms = 0.0;
    double partition_ms = 0.0;
  };
  std::map<std::string, StageMs> partition_ms_by_key;
  for (std::size_t index = 0; index < partition_jobs.size(); ++index) {
    std::shared_ptr<const PartitionArtifact> artifact =
        std::move(partition_slots[index]);
    cache_->PutPartition(partition_jobs[index].key, artifact);
    partition_ms_by_key[partition_jobs[index].key] = {
        partition_job_synth_ms[index], partition_job_ms[index]};
    out.synth_stage_ms += partition_job_synth_ms[index];
    out.partition_stage_ms += partition_job_ms[index];
    if (artifact->status.ok()) {
      partition_done.emplace(partition_jobs[index].key, std::move(artifact));
    } else {
      partition_failed.emplace(partition_jobs[index].key, artifact->status);
    }
  }

  // ---- Fill points and compute per-binary Pareto frontiers ---------------
  for (std::size_t i = 0; i < num_points; ++i) {
    ExplorePoint& point = out.points[i];
    if (!point.status.ok() || point_keys[i].empty()) continue;
    const auto failed = partition_failed.find(point_keys[i]);
    if (failed != partition_failed.end()) {
      point.status = failed->second;
      continue;
    }
    const auto done = partition_done.find(point_keys[i]);
    Check(done != partition_done.end(), "Explorer: missing artifact");
    const PartitionArtifact& artifact = *done->second;
    point.speedup = artifact.estimate.speedup;
    point.partitioned_time = artifact.estimate.partitioned_time;
    point.energy = artifact.estimate.partitioned_energy;
    point.energy_savings = artifact.estimate.energy_savings;
    point.edp =
        artifact.estimate.partitioned_energy * artifact.estimate.partitioned_time;
    point.area_gates = artifact.estimate.area_gates;
    point.hw_regions = artifact.partition.hw.size();
    point.hw_names.clear();
    point.hw_names.reserve(artifact.partition.hw.size());
    for (const auto& region : artifact.partition.hw) {
      point.hw_names.push_back(region.synthesized.region.name);
    }
    point.rejected = artifact.partition.rejected;
    point.from_cache = partition_cached_keys.count(point_keys[i]) != 0;
    // Stage cost attribution: the job(s) that produced this point's
    // artifacts this sweep (absent key = served from cache = 0 ms).
    const std::size_t b = i / (out.num_platforms * out.num_strategies *
                               out.num_objectives);
    const std::size_t p =
        (i / (out.num_strategies * out.num_objectives)) % out.num_platforms;
    if (const auto ms =
            decomp_ms_by_key.find(pair_decomp_key[b * out.num_platforms + p]);
        ms != decomp_ms_by_key.end()) {
      point.decompile_ms = ms->second;
    }
    if (const auto ms = partition_ms_by_key.find(point_keys[i]);
        ms != partition_ms_by_key.end()) {
      point.synth_ms = ms->second.synth_ms;
      point.partition_ms = ms->second.partition_ms;
    }
  }
  for (std::size_t b = 0; b < out.num_binaries; ++b) {
    std::vector<std::size_t> ok_points;
    std::vector<ParetoMetrics> metrics;
    for (std::size_t p = 0; p < out.num_platforms; ++p) {
      for (std::size_t s = 0; s < out.num_strategies; ++s) {
        for (std::size_t o = 0; o < out.num_objectives; ++o) {
          const std::size_t i = point_index(b, p, s, o);
          if (!out.points[i].status.ok()) continue;
          ok_points.push_back(i);
          metrics.push_back({out.points[i].speedup, out.points[i].energy,
                             out.points[i].area_gates});
        }
      }
    }
    for (std::size_t index : ParetoFrontier(metrics)) {
      out.points[ok_points[index]].on_frontier = true;
    }
  }

  out.simulations_run = simulations.load();
  out.decompilations_run = decompilations.load();
  out.partitions_run = partitions.load();
  out.decompile_rehydrations = rehydrations.load();
  out.cache_hits = cache_hits;
  out.cache_misses = cache_misses;
  out.cache_memory_hits = cache_memory_hits;
  out.cache_disk_hits = cache_disk_hits;
  out.wall_ms = wall.Millis();
  sweep_span.Arg("cache_hits", static_cast<std::uint64_t>(cache_hits))
      .Arg("cache_misses", static_cast<std::uint64_t>(cache_misses));
  report_progress("done", num_points, num_points, /*finished=*/true);
  return out;
}

std::string ExploreResult::Report() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line,
                "=== design-space exploration: %zu binaries x %zu platforms "
                "x %zu strategies x %zu objectives ===\n",
                num_binaries, num_platforms, num_strategies, num_objectives);
  out << line;
  for (std::size_t b = 0; b < num_binaries; ++b) {
    const std::size_t row = b * num_platforms * num_strategies * num_objectives;
    if (row >= points.size()) break;
    out << "--- " << points[row].binary_name << " ---\n";
    std::snprintf(line, sizeof line,
                  "  %-20s %-18s %-9s %9s %11s %12s %12s %3s %s\n", "platform",
                  "strategy", "objective", "speedup", "energy(uJ)",
                  "edp(uJ.ms)", "area(gates)", "hw", "pareto");
    out << line;
    std::size_t frontier_count = 0;
    std::size_t ok_count = 0;
    for (std::size_t p = 0; p < num_platforms; ++p) {
      for (std::size_t s = 0; s < num_strategies; ++s) {
        for (std::size_t o = 0; o < num_objectives; ++o) {
          const ExplorePoint& point = At(b, p, s, o);
          if (!point.status.ok()) {
            std::snprintf(line, sizeof line, "  %-20s %-18s %-9s FAILED: %s\n",
                          point.platform_name.c_str(),
                          point.strategy_name.c_str(),
                          std::string(partition::ObjectiveName(point.objective))
                              .c_str(),
                          point.status.message().c_str());
            out << line;
            continue;
          }
          ++ok_count;
          if (point.on_frontier) ++frontier_count;
          std::snprintf(
              line, sizeof line,
              "  %-20s %-18s %-9s %8.2fx %11.3f %12.4f %12.0f %3zu %s\n",
              point.platform_name.c_str(), point.strategy_name.c_str(),
              std::string(partition::ObjectiveName(point.objective)).c_str(),
              point.speedup, point.energy * 1e6, point.edp * 1e9,
              point.area_gates, point.hw_regions,
              point.on_frontier ? "*" : "");
          out << line;
        }
      }
    }
    std::snprintf(line, sizeof line,
                  "  pareto frontier: %zu of %zu points\n", frontier_count,
                  ok_count);
    out << line;
    // Why regions were skipped (deduplicated per point).
    for (std::size_t p = 0; p < num_platforms; ++p) {
      for (std::size_t s = 0; s < num_strategies; ++s) {
        for (std::size_t o = 0; o < num_objectives; ++o) {
          const ExplorePoint& point = At(b, p, s, o);
          if (!point.status.ok() || point.rejected.empty()) continue;
          const std::vector<std::string> unique =
              partition::UniqueRejections(point.rejected);
          out << "  rejected [" << point.platform_name << "/"
              << point.strategy_name << "/"
              << partition::ObjectiveName(point.objective) << "]: ";
          for (std::size_t r = 0; r < unique.size(); ++r) {
            if (r != 0) out << "; ";
            out << unique[r];
          }
          out << "\n";
        }
      }
    }
  }
  return out.str();
}

std::string ExploreResult::Json(bool include_stage_ms) const {
  std::ostringstream out;
  char number[64];
  const auto emit_double = [&](const char* name, double value) {
    std::snprintf(number, sizeof number, "%.9g", value);
    out << ",\"" << name << "\":" << number;
  };
  const auto emit_strings = [&](const char* name,
                                const std::vector<std::string>& values) {
    out << ",\"" << name << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out << ",";
      out << "\"" << support::JsonEscape(values[i]) << "\"";
    }
    out << "]";
  };
  out << "{\"schema\":" << kReportSchemaVersion << ",\"binaries\":"
      << num_binaries << ",\"platforms\":" << num_platforms
      << ",\"strategies\":" << num_strategies << ",\"objectives\":"
      << num_objectives << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ExplorePoint& point = points[i];
    if (i != 0) out << ",";
    out << "{\"binary\":\"" << support::JsonEscape(point.binary_name)
        << "\",\"platform\":\"" << support::JsonEscape(point.platform_name)
        << "\",\"strategy\":\"" << support::JsonEscape(point.strategy_name)
        << "\",\"objective\":\""
        << partition::ObjectiveName(point.objective) << "\"";
    if (!point.status.ok()) {
      out << ",\"error\":\"" << support::JsonEscape(point.status.message())
          << "\"}";
      continue;
    }
    emit_double("speedup", point.speedup);
    emit_double("energy", point.energy);
    emit_double("energy_savings", point.energy_savings);
    emit_double("edp", point.edp);
    emit_double("area_gates", point.area_gates);
    emit_strings("hw_regions", point.hw_names);
    emit_strings("rejected", point.rejected);
    if (include_stage_ms) {
      // Host-time data: only behind the opt-in flag, never on the
      // byte-compared default surface (see the header contract).
      emit_double("decompile_ms", point.decompile_ms);
      emit_double("synth_ms", point.synth_ms);
      emit_double("partition_ms", point.partition_ms);
    }
    out << ",\"pareto\":" << (point.on_frontier ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

std::string ExploreResult::StatsReport() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line,
                "work: %zu simulations, %zu decompilations "
                "(%zu rehydrated), %zu partitions\n",
                simulations_run, decompilations_run, decompile_rehydrations,
                partitions_run);
  out << line;
  std::snprintf(line, sizeof line,
                "cache: %zu hits (%zu memory + %zu disk), %zu misses "
                "(hit rate %.0f%%)\n",
                cache_hits, cache_memory_hits, cache_disk_hits, cache_misses,
                cache_hits + cache_misses > 0
                    ? 100.0 * static_cast<double>(cache_hits) /
                          static_cast<double>(cache_hits + cache_misses)
                    : 0.0);
  out << line;
  std::snprintf(line, sizeof line,
                "stages: %.1f ms decompile, %.1f ms synth, "
                "%.1f ms partition\n",
                decompile_stage_ms, synth_stage_ms, partition_stage_ms);
  out << line;
  std::snprintf(line, sizeof line, "wall: %.1f ms\n", wall_ms);
  out << line;
  return out.str();
}

}  // namespace b2h::explore
