// Content-addressed artifact cache for design-space sweeps — two tiers.
//
// Both expensive stages of the flow are pure functions of their inputs:
//
//   decompile  = f(binary bytes, pipeline spec, CPU cycle model, sim budget)
//   partition  = f(decompile inputs, platform model, strategy, objective,
//                  seed, partition/synthesis options)
//
// so each artifact is stored under a hash of exactly those inputs (FNV-1a
// 64 over a canonical serialization).  Repeated or overlapping sweeps —
// re-running a sweep, widening a platform grid, adding a strategy — skip
// all work whose key already exists.
//
// Tier 1 (memory) stores shared_ptr-owned immutable artifacts; a
// PartitionResult points into its decompiled program's IR, so the partition
// artifact keeps the program alive alongside it.
//
// Tier 2 (disk, optional — explore::DiskStore) persists a binary
// serialization of each artifact so warm sweeps survive process restarts:
// a sweep re-run from a fresh process against the same cache dir performs
// zero simulations/decompilations/partitions and produces a bit-identical
// Report().  Two deliberate limits of the serialized form:
//
//   * a decompile entry carries the status + full profiling RunResult but
//     NOT the decompiled IR (serializing the CDFG is not worth it when the
//     partition artifacts that consume it are cached next to it).  A
//     disk-hydrated DecompileArtifact therefore has `program == nullptr`;
//     the Explorer rebuilds the program from the cached profile — skipping
//     the simulation — only when a partition key actually misses.
//   * a partition entry carries the status, the full AppEstimate, and the
//     report-relevant PartitionResult fields (region names/metrics/VHDL,
//     rejection log, totals).  Hydrated SelectedRegions have null IR
//     pointers and an empty schedule; everything the Explorer and its
//     reports consume is present and bit-exact (doubles round-trip by bit
//     pattern).
//
// Cached *failures* (faulting binaries, CDFG recovery) persist too —
// `status` carries the error and the payload pointers stay null — so a
// warm sweep never redoes known-bad work either.  Every Find/Put reports
// its tier through Stats (memory hits vs disk hits vs misses), which the
// Explorer splits out in StatsReport().
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "decomp/pipeline.hpp"
#include "explore/disk_store.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "partition/candidates.hpp"
#include "partition/estimate.hpp"
#include "partition/partitioner.hpp"
#include "partition/platform.hpp"
#include "support/error.hpp"

namespace b2h::explore {

/// FNV-1a 64 accumulator with fixed-width encodings, so keys are stable
/// across platforms and runs.
class ContentHasher {
 public:
  ContentHasher& Bytes(const void* data, std::size_t size);
  ContentHasher& U64(std::uint64_t value);
  ContentHasher& F64(double value);  ///< hashed by bit pattern
  ContentHasher& Str(std::string_view text);

  /// 16-hex-digit digest of everything hashed so far.
  [[nodiscard]] std::string Hex() const;

 private:
  std::uint64_t state_ = 1469598103934665603ull;
};

/// Content hash of a software binary (text, data, entry point, symbols).
[[nodiscard]] std::string HashBinary(const mips::SoftBinary& binary);
/// Content hash of every numeric field of a platform model.
[[nodiscard]] std::string HashPlatform(const partition::Platform& platform);
/// Content hash of partitioning + synthesis options that affect results.
[[nodiscard]] std::string HashPartitionOptions(
    const partition::PartitionOptions& options);

/// Profiling run + decompiled program for one (binary, cycle model,
/// pipeline) key.  `program == nullptr` with an ok status marks a
/// disk-hydrated summary: the profile is available, the IR is not.
struct DecompileArtifact {
  Status status;
  std::shared_ptr<const mips::RunResult> software_run;
  std::shared_ptr<const decomp::DecompiledProgram> program;
};

/// Partition + estimate for one (decompile key, platform, strategy,
/// objective) key.  `program` keeps the IR the partition points into
/// alive; on disk-hydrated artifacts it is null and `partition.hw` carries
/// names/metrics/VHDL without live IR pointers.  As above, a failed
/// partition is cached with its `status`.
struct PartitionArtifact {
  Status status;
  std::shared_ptr<const decomp::DecompiledProgram> program;
  std::shared_ptr<const mips::RunResult> software_run;
  partition::PartitionResult partition;
  partition::AppEstimate estimate;
};

// Artifact (de)serialization for the disk tier.  Decode returns nullptr on
// any malformed input (the store's checksum makes this rare; the decoders
// are still fully bounds-checked).  Exposed for the cache tests.
[[nodiscard]] std::string EncodeDecompileArtifact(
    const DecompileArtifact& artifact);
[[nodiscard]] std::shared_ptr<const DecompileArtifact> DecodeDecompileArtifact(
    std::string_view payload);
[[nodiscard]] std::string EncodePartitionArtifact(
    const PartitionArtifact& artifact);
[[nodiscard]] std::shared_ptr<const PartitionArtifact> DecodePartitionArtifact(
    std::string_view payload);

/// Which tier served a lookup.
enum class HitTier { kMiss, kMemory, kDisk };

class ArtifactCache {
 public:
  struct Stats {
    std::size_t memory_hits = 0;
    std::size_t disk_hits = 0;
    std::size_t misses = 0;
    std::size_t disk_stores = 0;       ///< entries written to disk
    std::size_t disk_bad_entries = 0;  ///< undecodable disk payloads seen
    std::size_t entries = 0;           ///< memory-tier entries

    [[nodiscard]] std::size_t hits() const { return memory_hits + disk_hits; }
  };

  /// Memory-only cache (the PR-3 behavior).
  ArtifactCache() = default;
  /// Two-tier cache persisting under `disk.directory` (empty = memory-only).
  explicit ArtifactCache(DiskStore::Options disk);

  /// nullptr on miss; every call counts toward the stats, and `tier` (when
  /// non-null) reports which tier served it.  Disk hits are promoted into
  /// the memory tier.
  [[nodiscard]] std::shared_ptr<const DecompileArtifact> FindDecompile(
      const std::string& key, HitTier* tier = nullptr);
  [[nodiscard]] std::shared_ptr<const PartitionArtifact> FindPartition(
      const std::string& key, HitTier* tier = nullptr);

  /// Publishing a decompile artifact also releases any single-flight
  /// waiters registered for `key` (see LeadDecompile); keys that were never
  /// led — Stage A' rehydrations refreshing a disk hit — pass through
  /// unaffected.
  void PutDecompile(const std::string& key,
                    std::shared_ptr<const DecompileArtifact> artifact);
  void PutPartition(const std::string& key,
                    std::shared_ptr<const PartitionArtifact> artifact);

  /// Single-flight coordination for cold decompile keys on a shared cache:
  /// concurrent explorers that miss the same key would otherwise each run
  /// the profile+decompile (the daemon's scheduler only coalesces identical
  /// *requests*; distinct strategies over one binary share the decompile
  /// key but not the request key).  The first caller for a key that is
  /// neither published nor in flight becomes the leader (returns true) and
  /// MUST eventually PutDecompile that key — success or failure — to
  /// release the others.  Everyone else gets false and blocks in
  /// WaitDecompile until the leader publishes.
  [[nodiscard]] bool LeadDecompile(const std::string& key);
  /// Blocks until the leader's PutDecompile and returns the published
  /// artifact.  Returns immediately when the key is already in the memory
  /// tier; nullptr only when the key is neither published nor in flight
  /// (the entry vanished, e.g. Clear() raced the wait — callers should fall
  /// back to computing locally).
  [[nodiscard]] std::shared_ptr<const DecompileArtifact> WaitDecompile(
      const std::string& key);

  [[nodiscard]] Stats stats() const;
  /// Drop the memory tier (and reset counters); disk entries survive.
  void Clear();

  /// Disk tier handle (null when memory-only) — maintenance (gc/stats/
  /// clear) goes through it.
  [[nodiscard]] DiskStore* disk() { return disk_ ? disk_.get() : nullptr; }
  [[nodiscard]] bool disk_enabled() const { return disk_ != nullptr; }

  /// Pool of pre-scanned candidate sets keyed on (decompile key,
  /// partition-options hash); lives beside the artifact tiers so every
  /// tenant of a shared cache — all points of a sweep, all requests of a
  /// serve daemon — also shares candidate scans and synthesis memos.
  /// Never null.
  [[nodiscard]] const std::shared_ptr<partition::CandidateSetPool>&
  candidate_pool() const {
    return candidate_pool_;
  }

 private:
  // Shared two-tier lookup/insert machinery behind the typed entry points
  // (defined in the .cpp; instantiated only there).
  template <typename Artifact>
  [[nodiscard]] std::shared_ptr<const Artifact> FindInTiers(
      std::unordered_map<std::string, std::shared_ptr<const Artifact>>&
          entries,
      std::string_view kind,
      std::shared_ptr<const Artifact> (*decode)(std::string_view),
      const std::string& key, HitTier* tier);
  template <typename Artifact>
  void PutInTiers(
      std::unordered_map<std::string, std::shared_ptr<const Artifact>>&
          entries,
      std::string_view kind, std::string (*encode)(const Artifact&),
      const std::string& key, std::shared_ptr<const Artifact> artifact);

  /// In-flight single-flight decompiles: key -> the future every waiter
  /// blocks on.  Entries are created by the losing LeadDecompile race,
  /// fulfilled and erased by PutDecompile.  Clear() leaves them alone —
  /// their leaders are still running and must be able to release waiters.
  using DecompileFlight =
      std::shared_future<std::shared_ptr<const DecompileArtifact>>;
  struct InFlightDecompile {
    std::promise<std::shared_ptr<const DecompileArtifact>> promise;
    DecompileFlight future;
  };

  mutable std::mutex mutex_;
  mutable Stats stats_;
  std::unordered_map<std::string, std::shared_ptr<const DecompileArtifact>>
      decompiles_;
  std::unordered_map<std::string, std::shared_ptr<InFlightDecompile>>
      in_flight_decompiles_;
  std::unordered_map<std::string, std::shared_ptr<const PartitionArtifact>>
      partitions_;
  std::unique_ptr<DiskStore> disk_;
  std::shared_ptr<partition::CandidateSetPool> candidate_pool_ =
      std::make_shared<partition::CandidateSetPool>();
};

}  // namespace b2h::explore
