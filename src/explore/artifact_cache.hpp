// Content-addressed artifact cache for design-space sweeps.
//
// Both expensive stages of the flow are pure functions of their inputs:
//
//   decompile  = f(binary bytes, pipeline spec, CPU cycle model, sim budget)
//   partition  = f(decompile inputs, platform model, strategy, objective,
//                  seed, partition/synthesis options)
//
// so each artifact is stored under a hash of exactly those inputs (FNV-1a
// 64 over a canonical serialization).  Repeated or overlapping sweeps —
// re-running a sweep, widening a platform grid, adding a strategy — skip
// all work whose key already exists.  Hit/miss counters are exposed for
// reports and asserted by the cache tests (a warm identical sweep performs
// zero decompilations).
//
// The cache stores shared_ptr-owned immutable artifacts; a PartitionResult
// points into its decompiled program's IR, so the partition artifact keeps
// the program alive alongside it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "decomp/pipeline.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "partition/estimate.hpp"
#include "partition/partitioner.hpp"
#include "partition/platform.hpp"
#include "support/error.hpp"

namespace b2h::explore {

/// FNV-1a 64 accumulator with fixed-width encodings, so keys are stable
/// across platforms and runs.
class ContentHasher {
 public:
  ContentHasher& Bytes(const void* data, std::size_t size);
  ContentHasher& U64(std::uint64_t value);
  ContentHasher& F64(double value);  ///< hashed by bit pattern
  ContentHasher& Str(std::string_view text);

  /// 16-hex-digit digest of everything hashed so far.
  [[nodiscard]] std::string Hex() const;

 private:
  std::uint64_t state_ = 1469598103934665603ull;
};

/// Content hash of a software binary (text, data, entry point, symbols).
[[nodiscard]] std::string HashBinary(const mips::SoftBinary& binary);
/// Content hash of every numeric field of a platform model.
[[nodiscard]] std::string HashPlatform(const partition::Platform& platform);
/// Content hash of partitioning + synthesis options that affect results.
[[nodiscard]] std::string HashPartitionOptions(
    const partition::PartitionOptions& options);

/// Profiling run + decompiled program for one (binary, cycle model,
/// pipeline) key.  Failures (faulting binaries, CDFG recovery) are cached
/// too — `status` carries the error and the payload pointers stay null —
/// so a warm sweep never redoes known-bad work either.
struct DecompileArtifact {
  Status status;
  std::shared_ptr<const mips::RunResult> software_run;
  std::shared_ptr<const decomp::DecompiledProgram> program;
};

/// Partition + estimate for one (decompile key, platform, strategy,
/// objective) key.  `program` keeps the IR the partition points into
/// alive.  As above, a failed partition is cached with its `status`.
struct PartitionArtifact {
  Status status;
  std::shared_ptr<const decomp::DecompiledProgram> program;
  std::shared_ptr<const mips::RunResult> software_run;
  partition::PartitionResult partition;
  partition::AppEstimate estimate;
};

class ArtifactCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };

  /// nullptr on miss; every call counts toward hits/misses.
  [[nodiscard]] std::shared_ptr<const DecompileArtifact> FindDecompile(
      const std::string& key) const;
  [[nodiscard]] std::shared_ptr<const PartitionArtifact> FindPartition(
      const std::string& key) const;

  void PutDecompile(const std::string& key,
                    std::shared_ptr<const DecompileArtifact> artifact);
  void PutPartition(const std::string& key,
                    std::shared_ptr<const PartitionArtifact> artifact);

  [[nodiscard]] Stats stats() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  mutable Stats stats_;
  std::unordered_map<std::string, std::shared_ptr<const DecompileArtifact>>
      decompiles_;
  std::unordered_map<std::string, std::shared_ptr<const PartitionArtifact>>
      partitions_;
};

}  // namespace b2h::explore
