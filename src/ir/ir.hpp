// Instruction-set-independent SSA IR ("the CDFG").
//
// The decompiler lifts MIPS binaries into this representation (paper §2:
// "binary parsing converts the software binary into an instruction set
// independent representation" followed by "CDFG creation").  The IR is a
// control-flow graph of basic blocks whose instructions form the data-flow
// graph via SSA def-use edges; together they are the annotated CDFG that
// drives partitioning and behavioral synthesis.
//
// Design notes:
//  - Instructions are the only value producers; operands are either the
//    result of another instruction or an immediate constant (`Value`).
//  - No persistent use-lists: passes rewrite operands through
//    ReplaceAllUses(), which is O(instructions) and keeps invariants simple.
//  - Every instruction carries `width`, the number of significant result
//    bits.  Lifting produces width 32 (or 1 for comparisons); the operator
//    size reduction pass narrows widths, which the synthesis area/delay
//    models consume directly.
//  - `src_pc` records binary provenance so profiling data (per-PC counts)
//    can be mapped onto CDFG blocks and loops.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace b2h::ir {

class Block;
class Function;

enum class Opcode : std::uint8_t {
  // Values without operands.
  kInput,   ///< live-in machine register at function entry (input_index)
  kConst,   ///< immediate constant (imm)
  kUndef,   ///< unknown value (e.g. caller-saved register after a call)
  // Integer arithmetic / logic.
  kAdd, kSub, kMul, kMulHiS, kMulHiU, kDivS, kDivU, kRemS, kRemU,
  kAnd, kOr, kXor, kNor,
  kShl, kShrL, kShrA,
  // Comparisons (result width 1).
  kEq, kNe, kLtS, kLtU, kLeS, kLeU, kGtS, kGtU, kGeS, kGeU,
  // Conditional select: operands (cond, if_true, if_false).
  kSelect,
  // Width adjustment (operand 0; ext_from gives the source width).
  kSExt, kZExt, kTrunc,
  // Memory (mem_bytes: 1/2/4; loads: mem_signed picks sign/zero extension).
  kLoad,   ///< operands (address)
  kStore,  ///< operands (address, value)
  // SSA merge: operands parallel to Block::preds order.
  kPhi,
  // Control flow (block terminators).
  kBr,      ///< unconditional; successor target0
  kCondBr,  ///< operands (cond); target0 = taken, target1 = fallthrough
  kRet,     ///< operands () or (value)
  // Call to another recovered function (call site keeps register-passed
  // arguments in MIPS ABI order $a0..$a3; result models $v0).
  kCall,
};

[[nodiscard]] const char* OpcodeName(Opcode op) noexcept;
[[nodiscard]] bool IsTerminator(Opcode op) noexcept;
[[nodiscard]] bool IsComparison(Opcode op) noexcept;
[[nodiscard]] bool IsCommutative(Opcode op) noexcept;
/// Instructions that must not be removed even when their result is unused.
[[nodiscard]] bool HasSideEffects(Opcode op) noexcept;

class Instr;

/// An operand: either the SSA result of an instruction or a constant.
struct Value {
  enum class Kind : std::uint8_t { kNone, kInstr, kConst };
  Kind kind = Kind::kNone;
  Instr* def = nullptr;
  std::int32_t imm = 0;

  [[nodiscard]] static Value Of(Instr* instr) {
    Check(instr != nullptr, "Value::Of(nullptr)");
    return Value{Kind::kInstr, instr, 0};
  }
  [[nodiscard]] static Value Const(std::int32_t imm) {
    return Value{Kind::kConst, nullptr, imm};
  }
  [[nodiscard]] static Value None() { return Value{}; }

  [[nodiscard]] bool is_instr() const noexcept { return kind == Kind::kInstr; }
  [[nodiscard]] bool is_const() const noexcept { return kind == Kind::kConst; }
  [[nodiscard]] bool is_none() const noexcept { return kind == Kind::kNone; }
  [[nodiscard]] bool is_const_value(std::int32_t v) const noexcept {
    return is_const() && imm == v;
  }
  [[nodiscard]] bool operator==(const Value& other) const noexcept {
    return kind == other.kind && def == other.def && imm == other.imm;
  }
};

class Instr {
 public:
  Opcode op = Opcode::kUndef;
  std::uint8_t width = 32;       ///< significant result bits (0 if no result)
  bool is_signed = true;         ///< signedness of the produced value
  std::uint8_t mem_bytes = 4;    ///< kLoad/kStore access size
  bool mem_signed = true;        ///< kLoad: sign-extend narrow loads
  std::uint8_t ext_from = 32;    ///< kSExt/kZExt/kTrunc source width
  std::uint16_t input_index = 0; ///< kInput: machine register number
  std::uint32_t call_target = 0; ///< kCall: callee entry address
  std::int32_t imm = 0;          ///< kConst value
  std::uint32_t src_pc = 0;      ///< binary provenance (0 = synthesized)
  int id = -1;                   ///< dense id assigned by Function

  std::vector<Value> operands;
  Block* parent = nullptr;
  Block* target0 = nullptr;  ///< kBr/kCondBr successor
  Block* target1 = nullptr;  ///< kCondBr fallthrough successor

  [[nodiscard]] Value result() { return Value::Of(this); }
  [[nodiscard]] bool is(Opcode o) const noexcept { return op == o; }
  [[nodiscard]] bool is_terminator() const noexcept {
    return IsTerminator(op);
  }
  [[nodiscard]] Value operand(std::size_t i) const {
    Check(i < operands.size(), "Instr::operand out of range");
    return operands[i];
  }
};

class Block {
 public:
  int id = -1;
  std::string name;
  std::uint32_t start_pc = 0;      ///< binary address of the block leader
  std::uint64_t exec_count = 0;    ///< profile annotation
  /// Profile annotation for the terminating branch (kCondBr only):
  /// executions that went to target0 / target1.
  std::uint64_t taken_count = 0;
  std::uint64_t not_taken_count = 0;
  Function* parent = nullptr;
  std::vector<Instr*> instrs;      ///< phis first, terminator last
  std::vector<Block*> preds;       ///< maintained by Function::RecomputeCfg

  /// Successors derived from the terminator (empty for kRet).
  [[nodiscard]] std::vector<Block*> succs() const;
  [[nodiscard]] Instr* terminator() const;
  [[nodiscard]] bool has_terminator() const;

  /// Append before the terminator if present, else at the end.
  void Append(Instr* instr);
  /// Insert a phi at the start of the block.
  void PrependPhi(Instr* phi);
  /// Remove an instruction from this block (does not free it).
  void Remove(const Instr* instr);
  /// Index of `pred` in preds (phi operand position).
  [[nodiscard]] std::size_t PredIndex(const Block* pred) const;
  /// Non-phi instruction count.
  [[nodiscard]] std::size_t BodySize() const;
  [[nodiscard]] std::vector<Instr*> Phis() const;
};

class Function {
 public:
  explicit Function(std::string name, std::uint32_t entry_pc = 0)
      : name_(std::move(name)), entry_pc_(entry_pc) {}

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t entry_pc() const noexcept { return entry_pc_; }
  [[nodiscard]] Block* entry() const {
    Check(!blocks_.empty(), "Function has no blocks");
    return blocks_.front().get();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Block>>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::size_t NumInstrs() const;

  Block* CreateBlock(std::string name, std::uint32_t start_pc = 0);
  /// Allocate an instruction owned by this function (not yet in a block).
  Instr* Create(Opcode op);
  /// Allocate + append a simple value-producing instruction.
  Instr* Emit(Block* block, Opcode op, std::vector<Value> operands,
              std::uint8_t width = 32);

  /// Recompute preds from terminators; renumber blocks and instructions.
  void RecomputeCfg();

  /// Rewrite every operand whose definition appears in `replacements`.
  /// Chains (a->b, b->c) are followed.  Does not erase replaced instrs.
  void ReplaceAllUses(const std::unordered_map<const Instr*, Value>& map);

  /// Remove instructions not reachable from side effects (classic DCE).
  /// Returns the number of instructions removed.
  std::size_t RemoveDeadInstrs();

  /// Erase blocks unreachable from the entry; fixes phis of surviving blocks.
  void RemoveUnreachableBlocks();

  /// Total static operation count (reporting).
  [[nodiscard]] std::size_t CountOps() const;

 private:
  std::string name_;
  std::uint32_t entry_pc_ = 0;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<std::unique_ptr<Instr>> pool_;
};

/// A whole decompiled program: functions plus the data image they run over.
struct Module {
  std::vector<std::unique_ptr<Function>> functions;
  Function* main = nullptr;

  [[nodiscard]] Function* FindByEntry(std::uint32_t entry_pc) const {
    for (const auto& f : functions) {
      if (f->entry_pc() == entry_pc) return f.get();
    }
    return nullptr;
  }
};

}  // namespace b2h::ir
