// Reference interpreter for the decompiled CDFG.
//
// This is the middle leg of the repo's three-way co-simulation (DESIGN.md §5):
// the MIPS simulator executes the binary, this interpreter executes the
// decompiled IR, and the RTL simulator executes the synthesized circuit.
// All three must produce identical results for every benchmark at every
// compiler optimization level — the strongest evidence that decompilation
// (including the aggressive passes: stack-op removal, strength promotion,
// loop rerolling) is semantics-preserving.
//
// Width checking: after operator size reduction each value carries a claimed
// bit width.  The interpreter masks every result to its claimed width; a
// sound analysis makes masking the identity, so any width-analysis bug shows
// up as a co-simulation mismatch (and is also counted in width_violations).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/ir.hpp"

namespace b2h::ir {

struct InterpOptions {
  std::uint32_t data_base = 0x1000'0000u;
  std::uint32_t stack_top = 0x7FFF'F000u;
  std::uint32_t stack_size = 1u << 16;
  std::uint32_t data_size = 1u << 20;
  std::uint64_t max_steps = 200'000'000;
};

struct InterpResult {
  std::int32_t return_value = 0;
  std::uint64_t steps = 0;             ///< executed non-phi IR operations
  std::uint64_t width_violations = 0;  ///< results that did not fit widths
  bool ok = false;
  std::string error;
};

class Interpreter {
 public:
  Interpreter(const Module& module, std::span<const std::uint8_t> initial_data,
              InterpOptions options = {});

  [[nodiscard]] InterpResult Run(std::span<const std::int32_t> args = {});

  /// Inspect data memory after a run (for tests on array outputs).
  [[nodiscard]] std::uint32_t PeekWord(std::uint32_t addr) const;

 private:
  const Module& module_;
  InterpOptions options_;
  std::vector<std::uint8_t> data_mem_;
  std::vector<std::uint8_t> stack_mem_;
};

}  // namespace b2h::ir
