#include "ir/dominators.hpp"

#include <algorithm>
#include <unordered_set>

namespace b2h::ir {
namespace {

void PostOrderVisit(const Block* block, std::unordered_set<const Block*>& seen,
                    std::vector<const Block*>& order) {
  seen.insert(block);
  for (const Block* succ : block->succs()) {
    if (seen.count(succ) == 0) PostOrderVisit(succ, seen, order);
  }
  order.push_back(block);
}

}  // namespace

DominatorTree::DominatorTree(const Function& function) : function_(function) {
  // Reverse post order over reachable blocks.
  std::unordered_set<const Block*> seen;
  std::vector<const Block*> post;
  PostOrderVisit(function.entry(), seen, post);
  rpo_.assign(post.rbegin(), post.rend());

  int max_id = 0;
  for (const auto& block : function.blocks()) {
    max_id = std::max(max_id, block->id);
  }
  rpo_index_.assign(static_cast<std::size_t>(max_id) + 1, -1);
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[static_cast<std::size_t>(rpo_[i]->id)] = static_cast<int>(i);
  }

  // Cooper-Harvey-Kennedy iteration.  idom in rpo positions; entry = 0.
  const int n = static_cast<int>(rpo_.size());
  idom_.assign(static_cast<std::size_t>(n), -1);
  idom_[0] = 0;
  const auto intersect = [this](int a, int b) {
    while (a != b) {
      while (a > b) a = idom_[static_cast<std::size_t>(a)];
      while (b > a) b = idom_[static_cast<std::size_t>(b)];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 1; i < n; ++i) {
      int new_idom = -1;
      for (const Block* pred : rpo_[static_cast<std::size_t>(i)]->preds) {
        const int p = rpo_index_[static_cast<std::size_t>(pred->id)];
        if (p < 0 || idom_[static_cast<std::size_t>(p)] < 0) continue;
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      Check(new_idom >= 0, "DominatorTree: unreachable block in RPO");
      if (idom_[static_cast<std::size_t>(i)] != new_idom) {
        idom_[static_cast<std::size_t>(i)] = new_idom;
        changed = true;
      }
    }
  }

  // Dominance frontiers (CHK §4).
  frontier_.assign(static_cast<std::size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    const Block* block = rpo_[static_cast<std::size_t>(i)];
    if (block->preds.size() < 2) continue;
    for (const Block* pred : block->preds) {
      int runner = rpo_index_[static_cast<std::size_t>(pred->id)];
      if (runner < 0) continue;
      while (runner != idom_[static_cast<std::size_t>(i)]) {
        auto& frontier = frontier_[static_cast<std::size_t>(runner)];
        if (std::find(frontier.begin(), frontier.end(), block) ==
            frontier.end()) {
          frontier.push_back(block);
        }
        runner = idom_[static_cast<std::size_t>(runner)];
      }
    }
  }
}

int DominatorTree::IndexOf(const Block* block) const {
  Check(block != nullptr, "DominatorTree: null block");
  const auto id = static_cast<std::size_t>(block->id);
  Check(id < rpo_index_.size() && rpo_index_[id] >= 0,
        "DominatorTree: block not in RPO (unreachable or stale CFG)");
  return rpo_index_[id];
}

const Block* DominatorTree::Idom(const Block* block) const {
  const int i = IndexOf(block);
  if (i == 0) return nullptr;  // entry has no idom
  return rpo_[static_cast<std::size_t>(idom_[static_cast<std::size_t>(i)])];
}

bool DominatorTree::Dominates(const Block* a, const Block* b) const {
  int i = IndexOf(b);
  const int target = IndexOf(a);
  while (i > target) i = idom_[static_cast<std::size_t>(i)];
  return i == target;
}

bool DominatorTree::StrictlyDominates(const Block* a, const Block* b) const {
  return a != b && Dominates(a, b);
}

const std::vector<const Block*>& DominatorTree::Frontier(
    const Block* block) const {
  return frontier_[static_cast<std::size_t>(IndexOf(block))];
}

int DominatorTree::PostOrderIndex(const Block* block) const {
  return static_cast<int>(rpo_.size()) - 1 - IndexOf(block);
}

}  // namespace b2h::ir
