#include "ir/ir.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace b2h::ir {

const char* OpcodeName(Opcode op) noexcept {
  switch (op) {
    case Opcode::kInput: return "input";
    case Opcode::kConst: return "const";
    case Opcode::kUndef: return "undef";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMulHiS: return "mulhis";
    case Opcode::kMulHiU: return "mulhiu";
    case Opcode::kDivS: return "divs";
    case Opcode::kDivU: return "divu";
    case Opcode::kRemS: return "rems";
    case Opcode::kRemU: return "remu";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNor: return "nor";
    case Opcode::kShl: return "shl";
    case Opcode::kShrL: return "shrl";
    case Opcode::kShrA: return "shra";
    case Opcode::kEq: return "eq";
    case Opcode::kNe: return "ne";
    case Opcode::kLtS: return "lts";
    case Opcode::kLtU: return "ltu";
    case Opcode::kLeS: return "les";
    case Opcode::kLeU: return "leu";
    case Opcode::kGtS: return "gts";
    case Opcode::kGtU: return "gtu";
    case Opcode::kGeS: return "ges";
    case Opcode::kGeU: return "geu";
    case Opcode::kSelect: return "select";
    case Opcode::kSExt: return "sext";
    case Opcode::kZExt: return "zext";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kPhi: return "phi";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
    case Opcode::kCall: return "call";
  }
  return "?";
}

bool IsTerminator(Opcode op) noexcept {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

bool IsComparison(Opcode op) noexcept {
  switch (op) {
    case Opcode::kEq: case Opcode::kNe: case Opcode::kLtS: case Opcode::kLtU:
    case Opcode::kLeS: case Opcode::kLeU: case Opcode::kGtS:
    case Opcode::kGtU: case Opcode::kGeS: case Opcode::kGeU:
      return true;
    default:
      return false;
  }
}

bool IsCommutative(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd: case Opcode::kMul: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kNor: case Opcode::kEq: case Opcode::kNe:
    case Opcode::kMulHiS: case Opcode::kMulHiU:
      return true;
    default:
      return false;
  }
}

bool HasSideEffects(Opcode op) noexcept {
  return op == Opcode::kStore || op == Opcode::kCall || IsTerminator(op);
}

std::vector<Block*> Block::succs() const {
  const Instr* term = has_terminator() ? instrs.back() : nullptr;
  std::vector<Block*> out;
  if (term == nullptr) return out;
  if (term->op == Opcode::kBr) {
    out.push_back(term->target0);
  } else if (term->op == Opcode::kCondBr) {
    out.push_back(term->target0);
    out.push_back(term->target1);
  }
  return out;
}

Instr* Block::terminator() const {
  Check(has_terminator(), "Block has no terminator");
  return instrs.back();
}

bool Block::has_terminator() const {
  return !instrs.empty() && instrs.back()->is_terminator();
}

void Block::Append(Instr* instr) {
  Check(instr != nullptr, "Block::Append(nullptr)");
  instr->parent = this;
  if (has_terminator() && !instr->is_terminator()) {
    instrs.insert(instrs.end() - 1, instr);
  } else {
    instrs.push_back(instr);
  }
}

void Block::PrependPhi(Instr* phi) {
  Check(phi != nullptr && phi->op == Opcode::kPhi, "PrependPhi: not a phi");
  phi->parent = this;
  auto it = instrs.begin();
  while (it != instrs.end() && (*it)->op == Opcode::kPhi) ++it;
  instrs.insert(it, phi);
}

void Block::Remove(const Instr* instr) {
  const auto it = std::find(instrs.begin(), instrs.end(), instr);
  Check(it != instrs.end(), "Block::Remove: instruction not in block");
  instrs.erase(it);
}

std::size_t Block::PredIndex(const Block* pred) const {
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == pred) return i;
  }
  throw InternalError("Block::PredIndex: not a predecessor");
}

std::size_t Block::BodySize() const {
  std::size_t count = 0;
  for (const Instr* instr : instrs) {
    if (instr->op != Opcode::kPhi) ++count;
  }
  return count;
}

std::vector<Instr*> Block::Phis() const {
  std::vector<Instr*> phis;
  for (Instr* instr : instrs) {
    if (instr->op != Opcode::kPhi) break;
    phis.push_back(instr);
  }
  return phis;
}

std::size_t Function::NumInstrs() const {
  std::size_t count = 0;
  for (const auto& block : blocks_) count += block->instrs.size();
  return count;
}

Block* Function::CreateBlock(std::string name, std::uint32_t start_pc) {
  auto block = std::make_unique<Block>();
  block->name = std::move(name);
  block->start_pc = start_pc;
  block->parent = this;
  block->id = static_cast<int>(blocks_.size());
  blocks_.push_back(std::move(block));
  return blocks_.back().get();
}

Instr* Function::Create(Opcode op) {
  auto instr = std::make_unique<Instr>();
  instr->op = op;
  if (IsComparison(op)) instr->width = 1;
  if (IsTerminator(op) || op == Opcode::kStore) instr->width = 0;
  pool_.push_back(std::move(instr));
  return pool_.back().get();
}

Instr* Function::Emit(Block* block, Opcode op, std::vector<Value> operands,
                      std::uint8_t width) {
  Instr* instr = Create(op);
  instr->operands = std::move(operands);
  if (!IsComparison(op) && !IsTerminator(op) && op != Opcode::kStore) {
    instr->width = width;
  }
  block->Append(instr);
  return instr;
}

void Function::RecomputeCfg() {
  for (auto& block : blocks_) block->preds.clear();
  for (auto& block : blocks_) {
    for (Block* succ : block->succs()) succ->preds.push_back(block.get());
  }
  int block_id = 0;
  int instr_id = 0;
  for (auto& block : blocks_) {
    block->id = block_id++;
    for (Instr* instr : block->instrs) instr->id = instr_id++;
  }
}

void Function::ReplaceAllUses(
    const std::unordered_map<const Instr*, Value>& map) {
  if (map.empty()) return;
  const auto chase = [&map](Value value) {
    // Follow replacement chains (bounded by map size to catch cycles).
    std::size_t hops = 0;
    while (value.is_instr()) {
      const auto it = map.find(value.def);
      if (it == map.end()) break;
      value = it->second;
      Check(++hops <= map.size() + 1, "ReplaceAllUses: replacement cycle");
    }
    return value;
  };
  for (auto& block : blocks_) {
    for (Instr* instr : block->instrs) {
      for (Value& operand : instr->operands) operand = chase(operand);
    }
  }
}

std::size_t Function::RemoveDeadInstrs() {
  // Mark: roots are side-effecting instructions; sweep everything else that
  // is not transitively used by a root.
  std::unordered_set<const Instr*> live;
  std::deque<const Instr*> work;
  for (const auto& block : blocks_) {
    for (const Instr* instr : block->instrs) {
      if (HasSideEffects(instr->op)) {
        live.insert(instr);
        work.push_back(instr);
      }
    }
  }
  while (!work.empty()) {
    const Instr* instr = work.front();
    work.pop_front();
    for (const Value& operand : instr->operands) {
      if (operand.is_instr() && live.insert(operand.def).second) {
        work.push_back(operand.def);
      }
    }
  }
  std::size_t removed = 0;
  for (auto& block : blocks_) {
    auto& instrs = block->instrs;
    const auto new_end = std::remove_if(
        instrs.begin(), instrs.end(),
        [&live](const Instr* instr) { return live.count(instr) == 0; });
    removed += static_cast<std::size_t>(std::distance(new_end, instrs.end()));
    instrs.erase(new_end, instrs.end());
  }
  return removed;
}

void Function::RemoveUnreachableBlocks() {
  RecomputeCfg();
  std::unordered_set<const Block*> reachable;
  std::deque<Block*> work{entry()};
  reachable.insert(entry());
  while (!work.empty()) {
    Block* block = work.front();
    work.pop_front();
    for (Block* succ : block->succs()) {
      if (reachable.insert(succ).second) work.push_back(succ);
    }
  }
  // Drop phi operands that came from removed predecessors.
  for (auto& block : blocks_) {
    if (reachable.count(block.get()) == 0) continue;
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < block->preds.size(); ++i) {
      if (reachable.count(block->preds[i]) != 0) keep.push_back(i);
    }
    if (keep.size() == block->preds.size()) continue;
    for (Instr* phi : block->Phis()) {
      std::vector<Value> operands;
      operands.reserve(keep.size());
      for (std::size_t i : keep) operands.push_back(phi->operands[i]);
      phi->operands = std::move(operands);
    }
  }
  blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                               [&reachable](const auto& block) {
                                 return reachable.count(block.get()) == 0;
                               }),
                blocks_.end());
  RecomputeCfg();
}

std::size_t Function::CountOps() const {
  std::size_t count = 0;
  for (const auto& block : blocks_) {
    for (const Instr* instr : block->instrs) {
      if (!instr->is_terminator() && instr->op != Opcode::kPhi) ++count;
    }
  }
  return count;
}

}  // namespace b2h::ir
