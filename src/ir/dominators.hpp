// Dominator tree (Cooper-Harvey-Kennedy "A Simple, Fast Dominance
// Algorithm") plus dominance frontiers.  Used by SSA construction during
// lifting, by the verifier, and by control structure recovery.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace b2h::ir {

class DominatorTree {
 public:
  /// Function must have an up-to-date CFG (RecomputeCfg) with entry first.
  explicit DominatorTree(const Function& function);

  [[nodiscard]] const Block* Idom(const Block* block) const;
  [[nodiscard]] bool Dominates(const Block* a, const Block* b) const;
  /// Strict domination: Dominates(a, b) && a != b.
  [[nodiscard]] bool StrictlyDominates(const Block* a, const Block* b) const;
  /// Dominance frontier of `block`.
  [[nodiscard]] const std::vector<const Block*>& Frontier(
      const Block* block) const;
  /// Blocks in reverse post order.
  [[nodiscard]] const std::vector<const Block*>& ReversePostOrder() const {
    return rpo_;
  }
  /// Post-order index (for tests / tie-breaking).
  [[nodiscard]] int PostOrderIndex(const Block* block) const;

 private:
  [[nodiscard]] int IndexOf(const Block* block) const;

  const Function& function_;
  std::vector<const Block*> rpo_;
  std::vector<int> rpo_index_;       // block id -> rpo position (-1 if dead)
  std::vector<int> idom_;            // rpo position -> rpo position of idom
  std::vector<std::vector<const Block*>> frontier_;  // by rpo position
};

}  // namespace b2h::ir
