// Human-readable IR dump, used in tests and debugging.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace b2h::ir {

[[nodiscard]] std::string Print(const Function& function);
[[nodiscard]] std::string Print(const Module& module);

}  // namespace b2h::ir
