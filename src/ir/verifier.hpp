// Structural and SSA well-formedness checks.  Run after lifting and after
// every decompilation pass in debug/test builds to catch pass bugs early.
#pragma once

#include "ir/ir.hpp"

namespace b2h::ir {

/// Returns OK or a description of the first violated invariant.
/// Checks: block/terminator structure, phi placement and arity,
/// def-dominates-use (including phi edge semantics), operand sanity,
/// width ranges, and CFG pred/succ consistency.
[[nodiscard]] Status Verify(const Function& function);

/// Verifies every function in the module.
[[nodiscard]] Status Verify(const Module& module);

}  // namespace b2h::ir
