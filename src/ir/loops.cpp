#include "ir/loops.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace b2h::ir {

LoopForest::LoopForest(const Function& function, const DominatorTree& dom) {
  (void)function;  // identification works purely off the dominator tree
  // Collect back edges grouped by header (a -> h where h dominates a).
  std::map<const Block*, std::vector<const Block*>> back_edges;
  for (const Block* block : dom.ReversePostOrder()) {
    for (const Block* succ : block->succs()) {
      if (dom.Dominates(succ, block)) back_edges[succ].push_back(block);
    }
  }

  // One natural loop per header: union of all blocks that can reach a latch
  // without passing through the header.
  for (const auto& [header, latches] : back_edges) {
    auto loop = std::make_unique<Loop>();
    loop->header = header;
    loop->latches = latches;
    loop->blocks.insert(header);
    std::deque<const Block*> work(latches.begin(), latches.end());
    for (const Block* latch : latches) loop->blocks.insert(latch);
    while (!work.empty()) {
      const Block* block = work.front();
      work.pop_front();
      if (block == header) continue;
      for (const Block* pred : block->preds) {
        if (loop->blocks.insert(pred).second) work.push_back(pred);
      }
    }
    for (const Block* block : loop->blocks) {
      for (const Block* succ : block->succs()) {
        if (loop->blocks.count(succ) == 0 &&
            std::find(loop->exit_blocks.begin(), loop->exit_blocks.end(),
                      succ) == loop->exit_blocks.end()) {
          loop->exit_blocks.push_back(succ);
        }
      }
    }
    loops_.push_back(std::move(loop));
  }

  // Nesting: the parent of L is the smallest loop strictly containing L's
  // header among the other loops.
  for (auto& loop : loops_) {
    Loop* best = nullptr;
    for (auto& candidate : loops_) {
      if (candidate.get() == loop.get()) continue;
      if (candidate->Contains(loop->header) &&
          candidate->header != loop->header) {
        if (best == nullptr || best->blocks.size() > candidate->blocks.size()) {
          best = candidate.get();
        }
      }
    }
    loop->parent = best;
    if (best != nullptr) best->children.push_back(loop.get());
  }
  for (auto& loop : loops_) {
    int depth = 1;
    for (Loop* up = loop->parent; up != nullptr; up = up->parent) ++depth;
    loop->depth = depth;
  }
}

Loop* LoopForest::LoopFor(const Block* block) const {
  Loop* best = nullptr;
  for (const auto& loop : loops_) {
    if (loop->Contains(block)) {
      if (best == nullptr || loop->blocks.size() < best->blocks.size()) {
        best = loop.get();
      }
    }
  }
  return best;
}

std::vector<Loop*> LoopForest::Innermost() const {
  std::vector<Loop*> out;
  for (const auto& loop : loops_) {
    if (loop->IsInnermost()) out.push_back(loop.get());
  }
  return out;
}

void LoopForest::AnnotateProfile() {
  for (auto& loop : loops_) {
    loop->header_count = loop->header->exec_count;
    std::uint64_t back = 0;
    for (const Block* latch : loop->latches) {
      if (!latch->has_terminator()) continue;
      const Instr* term = latch->terminator();
      if (term->op == Opcode::kBr) {
        back += latch->exec_count;
      } else if (term->op == Opcode::kCondBr) {
        if (term->target0 == loop->header) back += latch->taken_count;
        if (term->target1 == loop->header) back += latch->not_taken_count;
      }
    }
    loop->entry_count = loop->header_count > back
                            ? loop->header_count - back
                            : 1;
  }
}

}  // namespace b2h::ir
