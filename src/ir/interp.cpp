#include "ir/interp.hpp"

#include <array>
#include <cstring>
#include <unordered_map>

#include "support/bits.hpp"

namespace b2h::ir {
namespace {

/// MIPS register numbers the call convention uses (kept numeric here so the
/// IR library does not depend on the mips library).
constexpr std::uint16_t kRegA0 = 4;
constexpr std::uint16_t kRegSp = 29;

}  // namespace

Interpreter::Interpreter(const Module& module,
                         std::span<const std::uint8_t> initial_data,
                         InterpOptions options)
    : module_(module), options_(options) {
  data_mem_.assign(options_.data_size, 0);
  if (!initial_data.empty()) {
    std::memcpy(data_mem_.data(), initial_data.data(),
                std::min<std::size_t>(initial_data.size(), data_mem_.size()));
  }
  stack_mem_.assign(options_.stack_size, 0);
}

std::uint32_t Interpreter::PeekWord(std::uint32_t addr) const {
  Check(addr >= options_.data_base &&
            addr + 4 <= options_.data_base + data_mem_.size(),
        "Interpreter::PeekWord outside data");
  std::uint32_t value;
  std::memcpy(&value, data_mem_.data() + (addr - options_.data_base), 4);
  return value;
}

InterpResult Interpreter::Run(std::span<const std::int32_t> args) {
  InterpResult result;
  if (module_.main == nullptr) {
    result.error = "module has no main";
    return result;
  }

  const auto mem_ptr = [this](std::uint32_t addr,
                              unsigned size) -> std::uint8_t* {
    if (addr >= options_.data_base &&
        addr + size <= options_.data_base + data_mem_.size()) {
      return data_mem_.data() + (addr - options_.data_base);
    }
    const std::uint32_t stack_base = options_.stack_top - options_.stack_size;
    if (addr >= stack_base && addr + size <= options_.stack_top) {
      return stack_mem_.data() + (addr - stack_base);
    }
    return nullptr;
  };

  // Explicit call stack (recursion depth bounded only by memory).
  struct Activation {
    const Function* function;
    std::unordered_map<const Instr*, std::int32_t> values;
    const Block* block = nullptr;
    const Block* prev_block = nullptr;
    std::size_t next_instr = 0;
    const Instr* pending_call = nullptr;  // call awaiting return value
    std::array<std::int32_t, 5> inputs{};  // a0..a3, sp
  };
  std::vector<Activation> stack;

  const auto enter = [&](const Function* function,
                         std::array<std::int32_t, 5> inputs) {
    Activation activation;
    activation.function = function;
    activation.block = function->entry();
    activation.inputs = inputs;
    stack.push_back(std::move(activation));
  };

  std::array<std::int32_t, 5> main_inputs{};
  for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
    main_inputs[i] = args[i];
  }
  main_inputs[4] = static_cast<std::int32_t>(options_.stack_top - 64);
  enter(module_.main, main_inputs);

  std::int32_t last_return = 0;

  const auto value_of = [&](Activation& act, const Value& v) -> std::int32_t {
    if (v.is_const()) return v.imm;
    Check(v.is_instr(), "interp: none operand");
    const auto it = act.values.find(v.def);
    Check(it != act.values.end(), "interp: use of unevaluated value");
    return it->second;
  };

  while (!stack.empty()) {
    if (result.steps >= options_.max_steps) {
      result.error = "interpreter step budget exhausted";
      return result;
    }
    Activation& act = stack.back();

    // Block entry: evaluate phis simultaneously.
    if (act.next_instr == 0 && !act.block->instrs.empty() &&
        act.block->instrs.front()->op == Opcode::kPhi &&
        act.pending_call == nullptr) {
      std::vector<std::pair<const Instr*, std::int32_t>> staged;
      const std::size_t pred_index =
          act.block->PredIndex(act.prev_block);
      for (const Instr* phi : act.block->Phis()) {
        staged.emplace_back(phi,
                            value_of(act, phi->operands[pred_index]));
      }
      for (const auto& [phi, value] : staged) act.values[phi] = value;
      act.next_instr = staged.size();
    }

    if (act.next_instr >= act.block->instrs.size()) {
      result.error = "interp: fell off block without terminator";
      return result;
    }
    const Instr* in = act.block->instrs[act.next_instr];

    // Resume after a call: store the callee's return value.
    if (act.pending_call != nullptr) {
      act.values[act.pending_call] = last_return;
      act.pending_call = nullptr;
      ++act.next_instr;
      continue;
    }

    const auto operand = [&](std::size_t i) {
      return value_of(act, in->operands[i]);
    };
    const auto uoperand = [&](std::size_t i) {
      return static_cast<std::uint32_t>(operand(i));
    };

    std::int32_t out = 0;
    bool produces = in->width > 0;
    bool advanced = false;

    switch (in->op) {
      case Opcode::kInput:
        if (in->input_index >= kRegA0 && in->input_index < kRegA0 + 4) {
          out = act.inputs[in->input_index - kRegA0];
        } else if (in->input_index == kRegSp) {
          out = act.inputs[4];
        } else {
          out = 0;
        }
        break;
      case Opcode::kConst: out = in->imm; break;
      case Opcode::kUndef: out = 0; break;
      case Opcode::kAdd: out = static_cast<std::int32_t>(uoperand(0) + uoperand(1)); break;
      case Opcode::kSub: out = static_cast<std::int32_t>(uoperand(0) - uoperand(1)); break;
      case Opcode::kMul: out = static_cast<std::int32_t>(uoperand(0) * uoperand(1)); break;
      case Opcode::kMulHiS:
        out = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(operand(0)) *
             static_cast<std::int64_t>(operand(1))) >> 32);
        break;
      case Opcode::kMulHiU:
        out = static_cast<std::int32_t>(
            (static_cast<std::uint64_t>(uoperand(0)) *
             static_cast<std::uint64_t>(uoperand(1))) >> 32);
        break;
      case Opcode::kDivS: {
        const std::int32_t a = operand(0), b = operand(1);
        out = b == 0 ? 0 : (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
        break;
      }
      case Opcode::kDivU: {
        const std::uint32_t a = uoperand(0), b = uoperand(1);
        out = b == 0 ? 0 : static_cast<std::int32_t>(a / b);
        break;
      }
      case Opcode::kRemS: {
        const std::int32_t a = operand(0), b = operand(1);
        out = b == 0 ? a : (a == INT32_MIN && b == -1) ? 0 : a % b;
        break;
      }
      case Opcode::kRemU: {
        const std::uint32_t a = uoperand(0), b = uoperand(1);
        out = b == 0 ? operand(0) : static_cast<std::int32_t>(a % b);
        break;
      }
      case Opcode::kAnd: out = static_cast<std::int32_t>(uoperand(0) & uoperand(1)); break;
      case Opcode::kOr:  out = static_cast<std::int32_t>(uoperand(0) | uoperand(1)); break;
      case Opcode::kXor: out = static_cast<std::int32_t>(uoperand(0) ^ uoperand(1)); break;
      case Opcode::kNor: out = static_cast<std::int32_t>(~(uoperand(0) | uoperand(1))); break;
      case Opcode::kShl: out = static_cast<std::int32_t>(uoperand(0) << (uoperand(1) & 31u)); break;
      case Opcode::kShrL: out = static_cast<std::int32_t>(uoperand(0) >> (uoperand(1) & 31u)); break;
      case Opcode::kShrA: out = operand(0) >> (uoperand(1) & 31u); break;
      case Opcode::kEq:  out = operand(0) == operand(1); break;
      case Opcode::kNe:  out = operand(0) != operand(1); break;
      case Opcode::kLtS: out = operand(0) < operand(1); break;
      case Opcode::kLtU: out = uoperand(0) < uoperand(1); break;
      case Opcode::kLeS: out = operand(0) <= operand(1); break;
      case Opcode::kLeU: out = uoperand(0) <= uoperand(1); break;
      case Opcode::kGtS: out = operand(0) > operand(1); break;
      case Opcode::kGtU: out = uoperand(0) > uoperand(1); break;
      case Opcode::kGeS: out = operand(0) >= operand(1); break;
      case Opcode::kGeU: out = uoperand(0) >= uoperand(1); break;
      case Opcode::kSelect: out = operand(0) != 0 ? operand(1) : operand(2); break;
      case Opcode::kSExt: out = SignExtend(uoperand(0), in->ext_from); break;
      case Opcode::kZExt: out = static_cast<std::int32_t>(uoperand(0) & LowMask(in->ext_from)); break;
      case Opcode::kTrunc: out = static_cast<std::int32_t>(uoperand(0) & LowMask(in->width)); break;
      case Opcode::kLoad: {
        const std::uint32_t addr = uoperand(0);
        const unsigned size = in->mem_bytes;
        const std::uint8_t* p = mem_ptr(addr, size);
        if (p == nullptr || (addr & (size - 1)) != 0) {
          result.error = "interp: bad load address";
          return result;
        }
        std::uint32_t raw = 0;
        for (unsigned b = 0; b < size; ++b) raw |= static_cast<std::uint32_t>(p[b]) << (8 * b);
        if (size < 4) {
          out = in->mem_signed ? SignExtend(raw, size * 8)
                               : static_cast<std::int32_t>(raw);
        } else {
          out = static_cast<std::int32_t>(raw);
        }
        break;
      }
      case Opcode::kStore: {
        const std::uint32_t addr = uoperand(0);
        const std::uint32_t value = uoperand(1);
        const unsigned size = in->mem_bytes;
        std::uint8_t* p = mem_ptr(addr, size);
        if (p == nullptr || (addr & (size - 1)) != 0) {
          result.error = "interp: bad store address";
          return result;
        }
        for (unsigned b = 0; b < size; ++b) p[b] = static_cast<std::uint8_t>((value >> (8 * b)) & 0xFFu);
        produces = false;
        break;
      }
      case Opcode::kPhi:
        // Handled at block entry; reaching one here means none were staged
        // (single-pred blocks with stale phis) — evaluate directly.
        out = value_of(
            act, in->operands[act.block->PredIndex(act.prev_block)]);
        break;
      case Opcode::kBr:
        act.prev_block = act.block;
        act.block = in->target0;
        act.next_instr = 0;
        advanced = true;
        break;
      case Opcode::kCondBr: {
        const bool taken = operand(0) != 0;
        act.prev_block = act.block;
        act.block = taken ? in->target0 : in->target1;
        act.next_instr = 0;
        advanced = true;
        break;
      }
      case Opcode::kRet:
        last_return = in->operands.empty() ? 0 : operand(0);
        stack.pop_back();
        advanced = true;
        break;
      case Opcode::kCall: {
        const Function* callee = module_.FindByEntry(in->call_target);
        if (callee == nullptr) {
          result.error = "interp: call to unknown function";
          return result;
        }
        std::array<std::int32_t, 5> inputs{};
        for (std::size_t i = 0; i < in->operands.size() && i < 5; ++i) {
          inputs[i] = operand(i);
        }
        act.pending_call = in;
        ++result.steps;
        enter(callee, inputs);
        advanced = true;
        break;
      }
    }

    if (advanced) {
      if (in->op != Opcode::kCall) ++result.steps;
      continue;
    }

    if (produces) {
      // Mask to the claimed width; count violations (soundness check for
      // the operator size reduction pass).
      std::int32_t masked = out;
      if (in->width < 32) {
        const std::uint32_t raw = static_cast<std::uint32_t>(out);
        masked = in->is_signed
                     ? SignExtend(raw, in->width)
                     : static_cast<std::int32_t>(raw & LowMask(in->width));
        if (masked != out) ++result.width_violations;
      }
      act.values[in] = masked;
    }
    if (in->op != Opcode::kPhi) ++result.steps;
    ++act.next_instr;
  }

  result.ok = true;
  result.return_value = last_return;
  return result;
}

}  // namespace b2h::ir
