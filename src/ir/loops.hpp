// Natural-loop discovery and loop-nesting forest.
//
// Control structure recovery (paper §2: "determines high-level control
// structures, such as loops and if statements") starts here: back edges of
// the dominator tree identify natural loops, which are the partitioning
// granules of the three-step algorithm in paper §3.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "ir/dominators.hpp"
#include "ir/ir.hpp"

namespace b2h::ir {

struct Loop {
  const Block* header = nullptr;
  std::vector<const Block*> latches;      ///< sources of back edges
  std::unordered_set<const Block*> blocks;
  std::vector<const Block*> exit_blocks;  ///< blocks outside with pred inside
  Loop* parent = nullptr;                 ///< enclosing loop (nullptr = top)
  std::vector<Loop*> children;
  int depth = 1;

  [[nodiscard]] bool Contains(const Block* block) const {
    return blocks.count(block) != 0;
  }
  [[nodiscard]] bool IsInnermost() const { return children.empty(); }

  /// Profile-derived estimates (filled by AnnotateProfile).
  std::uint64_t header_count = 0;  ///< times the header executed
  std::uint64_t entry_count = 0;   ///< times the loop was entered
  [[nodiscard]] double AverageTripCount() const {
    return entry_count == 0 ? 0.0
                            : static_cast<double>(header_count) /
                                  static_cast<double>(entry_count);
  }
};

class LoopForest {
 public:
  LoopForest(const Function& function, const DominatorTree& dom);

  [[nodiscard]] const std::vector<std::unique_ptr<Loop>>& loops() const {
    return loops_;
  }
  /// Innermost loop containing `block`, or nullptr.
  [[nodiscard]] Loop* LoopFor(const Block* block) const;
  [[nodiscard]] std::vector<Loop*> Innermost() const;
  /// Fill header/entry counts from Block::exec_count annotations.
  void AnnotateProfile();

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
};

}  // namespace b2h::ir
