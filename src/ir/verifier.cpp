#include "ir/verifier.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/dominators.hpp"

namespace b2h::ir {
namespace {

std::size_t ExpectedOperands(const Instr& instr) {
  switch (instr.op) {
    case Opcode::kInput: case Opcode::kConst: case Opcode::kUndef:
      return 0;
    case Opcode::kSExt: case Opcode::kZExt: case Opcode::kTrunc:
      return 1;
    case Opcode::kLoad: case Opcode::kBr:
      return instr.op == Opcode::kLoad ? 1 : 0;
    case Opcode::kStore:
      return 2;
    case Opcode::kSelect:
      return 3;
    case Opcode::kCondBr:
      return 1;
    case Opcode::kPhi: case Opcode::kRet: case Opcode::kCall:
      return SIZE_MAX;  // variable
    default:
      return 2;  // binary ops
  }
}

Status Fail(const Function& function, const Block* block, const Instr* instr,
            const std::string& what) {
  std::ostringstream out;
  out << "verify " << function.name();
  if (block != nullptr) out << " block " << block->name;
  if (instr != nullptr) out << " instr %" << instr->id << " "
                            << OpcodeName(instr->op);
  out << ": " << what;
  return Status::Error(ErrorKind::kUnsupported, out.str());
}

}  // namespace

Status Verify(const Function& function) {
  if (function.blocks().empty()) {
    return Fail(function, nullptr, nullptr, "function has no blocks");
  }

  // Pred/succ consistency and structural checks.
  std::unordered_map<const Block*, std::vector<const Block*>> expected_preds;
  std::unordered_set<const Instr*> all_instrs;
  for (const auto& block : function.blocks()) {
    if (!block->has_terminator()) {
      return Fail(function, block.get(), nullptr, "missing terminator");
    }
    bool seen_non_phi = false;
    for (std::size_t i = 0; i < block->instrs.size(); ++i) {
      const Instr* instr = block->instrs[i];
      if (instr->parent != block.get()) {
        return Fail(function, block.get(), instr, "wrong parent");
      }
      if (!all_instrs.insert(instr).second) {
        return Fail(function, block.get(), instr, "instruction appears twice");
      }
      if (instr->op == Opcode::kPhi) {
        if (seen_non_phi) {
          return Fail(function, block.get(), instr, "phi after non-phi");
        }
      } else {
        seen_non_phi = true;
      }
      if (instr->is_terminator() && i + 1 != block->instrs.size()) {
        return Fail(function, block.get(), instr, "terminator not last");
      }
      const std::size_t expected = ExpectedOperands(*instr);
      if (expected != SIZE_MAX && instr->operands.size() != expected) {
        return Fail(function, block.get(), instr, "bad operand count");
      }
      if (instr->op == Opcode::kRet && instr->operands.size() > 1) {
        return Fail(function, block.get(), instr, "ret operand count");
      }
      if (instr->width > 32) {
        return Fail(function, block.get(), instr, "width > 32");
      }
      for (const Value& operand : instr->operands) {
        if (operand.is_none()) {
          return Fail(function, block.get(), instr, "none operand");
        }
        if (operand.is_instr() && operand.def->width == 0) {
          return Fail(function, block.get(), instr,
                      "operand has no result (width 0)");
        }
      }
      if (instr->op == Opcode::kBr || instr->op == Opcode::kCondBr) {
        if (instr->target0 == nullptr) {
          return Fail(function, block.get(), instr, "missing target0");
        }
        if (instr->op == Opcode::kCondBr && instr->target1 == nullptr) {
          return Fail(function, block.get(), instr, "missing target1");
        }
      }
    }
    for (const Block* succ : block->succs()) {
      expected_preds[succ].push_back(block.get());
    }
  }
  for (const auto& block : function.blocks()) {
    auto expected = expected_preds[block.get()];
    std::vector<const Block*> actual(block->preds.begin(),
                                     block->preds.end());
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      return Fail(function, block.get(), nullptr,
                  "preds out of date (run RecomputeCfg)");
    }
  }

  // Phi arity matches preds.
  for (const auto& block : function.blocks()) {
    for (const Instr* phi : block->Phis()) {
      if (phi->operands.size() != block->preds.size()) {
        return Fail(function, block.get(), phi,
                    "phi operand count != predecessor count");
      }
    }
  }

  // Def-dominates-use over reachable blocks.
  const DominatorTree dom(function);
  std::unordered_set<const Block*> reachable(dom.ReversePostOrder().begin(),
                                             dom.ReversePostOrder().end());
  // Map instruction -> position for same-block ordering checks.
  std::unordered_map<const Instr*, std::size_t> position;
  for (const auto& block : function.blocks()) {
    for (std::size_t i = 0; i < block->instrs.size(); ++i) {
      position[block->instrs[i]] = i;
    }
  }
  for (const Block* block : dom.ReversePostOrder()) {
    for (const Instr* instr : block->instrs) {
      for (std::size_t oi = 0; oi < instr->operands.size(); ++oi) {
        const Value& operand = instr->operands[oi];
        if (!operand.is_instr()) continue;
        const Instr* def = operand.def;
        if (all_instrs.count(def) == 0) {
          return Fail(function, block, instr,
                      "operand defined by instruction outside function");
        }
        const Block* def_block = def->parent;
        if (reachable.count(def_block) == 0) {
          return Fail(function, block, instr,
                      "operand defined in unreachable block");
        }
        if (instr->op == Opcode::kPhi) {
          const Block* pred = block->preds[oi];
          if (!dom.Dominates(def_block, pred)) {
            return Fail(function, block, instr,
                        "phi operand does not dominate incoming edge");
          }
        } else if (def_block == block) {
          if (position[def] >= position[instr]) {
            return Fail(function, block, instr,
                        "use before def within block");
          }
        } else if (!dom.StrictlyDominates(def_block, block)) {
          return Fail(function, block, instr, "def does not dominate use");
        }
      }
    }
  }
  return Status::Ok();
}

Status Verify(const Module& module) {
  for (const auto& function : module.functions) {
    if (Status status = Verify(*function); !status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace b2h::ir
