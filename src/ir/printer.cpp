#include "ir/printer.hpp"

#include <iomanip>
#include <sstream>

namespace b2h::ir {
namespace {

void PrintValue(std::ostream& out, const Value& value) {
  switch (value.kind) {
    case Value::Kind::kInstr:
      out << '%' << value.def->id;
      break;
    case Value::Kind::kConst:
      out << value.imm;
      break;
    case Value::Kind::kNone:
      out << "<none>";
      break;
  }
}

void PrintInstr(std::ostream& out, const Instr& instr) {
  out << "  ";
  if (instr.width > 0) {
    out << '%' << instr.id << ":i" << static_cast<int>(instr.width) << " = ";
  }
  out << OpcodeName(instr.op);
  switch (instr.op) {
    case Opcode::kInput:
      out << " r" << instr.input_index;
      break;
    case Opcode::kConst:
      out << ' ' << instr.imm;
      break;
    case Opcode::kLoad:
    case Opcode::kStore:
      out << '.' << static_cast<int>(instr.mem_bytes)
          << (instr.op == Opcode::kLoad && instr.mem_bytes < 4
                  ? (instr.mem_signed ? "s" : "u")
                  : "");
      break;
    case Opcode::kSExt:
    case Opcode::kZExt:
    case Opcode::kTrunc:
      out << ".from" << static_cast<int>(instr.ext_from);
      break;
    case Opcode::kCall:
      out << " @0x" << std::hex << instr.call_target << std::dec;
      break;
    default:
      break;
  }
  bool first = true;
  for (std::size_t i = 0; i < instr.operands.size(); ++i) {
    out << (first ? " " : ", ");
    first = false;
    PrintValue(out, instr.operands[i]);
    if (instr.op == Opcode::kPhi && instr.parent != nullptr &&
        i < instr.parent->preds.size()) {
      out << " [" << instr.parent->preds[i]->name << ']';
    }
  }
  if (instr.op == Opcode::kBr) {
    out << ' ' << instr.target0->name;
  } else if (instr.op == Opcode::kCondBr) {
    out << ", " << instr.target0->name << ", " << instr.target1->name;
  }
  out << '\n';
}

}  // namespace

std::string Print(const Function& function) {
  std::ostringstream out;
  out << "func " << function.name() << " @0x" << std::hex
      << function.entry_pc() << std::dec << " {\n";
  for (const auto& block : function.blocks()) {
    out << block->name << ":";
    if (block->exec_count > 0) out << "  ; exec=" << block->exec_count;
    out << '\n';
    for (const Instr* instr : block->instrs) PrintInstr(out, *instr);
  }
  out << "}\n";
  return out.str();
}

std::string Print(const Module& module) {
  std::string out;
  for (const auto& function : module.functions) {
    out += Print(*function);
    out += '\n';
  }
  return out;
}

}  // namespace b2h::ir
