#include "support/fs.hpp"

#include <atomic>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace b2h::support {

namespace fs = std::filesystem;

std::optional<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return std::nullopt;
  content.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  if (!in) return std::nullopt;
  return content;
}

bool AtomicWriteFile(const fs::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path(), ec);  // ok if it exists
  }
  // Unique per process AND per call: concurrent writers in separate
  // processes (or threads) each stage their own temp file, and whichever
  // rename lands last wins with a complete file either way.
  static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const auto pid = static_cast<std::uint64_t>(::getpid());
#else
  const std::uint64_t pid = 0;
#endif
  fs::path temp = path;
  temp += ".tmp." + std::to_string(pid) + "." +
          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    // The final flush happens at close: check it explicitly, or a
    // disk-full write could install a truncated file and report success.
    out.close();
    if (out.fail()) {
      RemoveFileQuiet(temp);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    RemoveFileQuiet(temp);
    return false;
  }
  return true;
}

std::vector<FileInfo> ListFilesRecursive(const fs::path& root) {
  std::vector<FileInfo> files;
  std::error_code ec;
  // Manual increment with an error_code: the range-for form throws from
  // operator++ when the tree changes mid-walk (a concurrent process
  // clearing the shared cache dir), and a partial listing must stay a
  // partial listing, not an exception.
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  const fs::recursive_directory_iterator end;
  while (!ec && it != end) {
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec) && !entry_ec) {
      FileInfo info;
      info.path = entry.path();
      info.size = static_cast<std::uint64_t>(entry.file_size(entry_ec));
      if (!entry_ec) {
        info.mtime = entry.last_write_time(entry_ec);
        if (!entry_ec) files.push_back(std::move(info));
      }
    }
    it.increment(ec);
  }
  return files;
}

void TouchNow(const fs::path& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

bool RemoveFileQuiet(const fs::path& path) {
  std::error_code ec;
  return fs::remove(path, ec) && !ec;
}

std::uint64_t DirectoryBytes(const fs::path& root) {
  std::uint64_t total = 0;
  for (const FileInfo& info : ListFilesRecursive(root)) total += info.size;
  return total;
}

}  // namespace b2h::support
