// Shared JSON string-literal escaping for every machine-readable output
// (bench JSON-lines records, ToolchainRun::Json), so quoting/control-char
// handling cannot drift between writers.
#pragma once

#include <cstdio>
#include <string>

namespace b2h::support {

/// Escape `text` for use inside a JSON string literal: quotes and
/// backslashes are escaped, common control characters get their short
/// escapes, and any other control character becomes \u00XX.
inline std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (u < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", u);
          escaped += buffer;
        } else {
          escaped.push_back(c);
        }
    }
  }
  return escaped;
}

}  // namespace b2h::support
