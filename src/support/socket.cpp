#include "support/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace b2h::support {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool FillSockaddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr->sun_path) {
    *error = "socket path empty or too long (max " +
             std::to_string(sizeof addr->sun_path - 1) +
             " bytes): " + path;
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

enum class IoStatus { kOk, kEof, kTimeout, kError };

/// Read exactly `size` bytes; respects an optional absolute deadline.
IoStatus ReadExact(int fd, void* buffer, std::size_t size,
                   const Clock::time_point* deadline) {
  auto* out = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - Clock::now()).count();
      if (remaining <= 0) return IoStatus::kTimeout;
      timeout_ms = static_cast<int>(remaining);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, timeout_ms);
    if (polled == 0) return IoStatus::kTimeout;
    if (polled < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    const ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n == 0) return IoStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

bool WriteExact(int fd, const void* buffer, std::size_t size) {
  const auto* in = static_cast<const char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* ToString(FrameStatus status) noexcept {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kTimeout: return "timeout";
    case FrameStatus::kError: return "error";
  }
  return "error";
}

int ListenUnix(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr;
  if (!FillSockaddr(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  // A stale socket file from a crashed predecessor would make bind fail
  // with EADDRINUSE forever; the daemon owns its path, so reclaim it.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    *error = Errno("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    *error = Errno("listen");
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillSockaddr(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) < 0) {
    if (errno == EINTR) continue;
    *error = Errno("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

FrameStatus ReadFrame(int fd, std::string* payload,
                      std::uint32_t max_frame_bytes, int timeout_ms) {
  Clock::time_point deadline_storage;
  const Clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = Clock::now() + std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }

  unsigned char prefix[4];
  switch (ReadExact(fd, prefix, sizeof prefix, deadline)) {
    case IoStatus::kOk: break;
    case IoStatus::kEof:
      // EOF exactly on a frame boundary is a clean close; mid-prefix is a
      // truncation.  ReadExact cannot distinguish, so probe: a zero `done`
      // is indistinguishable here — treat any EOF in the prefix as kClosed
      // (the peer sent no usable frame either way).
      return FrameStatus::kClosed;
    case IoStatus::kTimeout: return FrameStatus::kTimeout;
    case IoStatus::kError: return FrameStatus::kError;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                               (static_cast<std::uint32_t>(prefix[1]) << 8) |
                               (static_cast<std::uint32_t>(prefix[2]) << 16) |
                               (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length > max_frame_bytes) return FrameStatus::kOversized;
  payload->resize(length);
  if (length == 0) return FrameStatus::kOk;
  switch (ReadExact(fd, payload->data(), length, deadline)) {
    case IoStatus::kOk: return FrameStatus::kOk;
    case IoStatus::kEof: return FrameStatus::kTruncated;
    case IoStatus::kTimeout: return FrameStatus::kTimeout;
    case IoStatus::kError: return FrameStatus::kError;
  }
  return FrameStatus::kError;
}

bool WriteFrame(int fd, std::string_view payload,
                std::uint32_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF),
  };
  // Queue prefix + payload with one writev: a receiver that rejects the
  // frame on the prefix alone (oversized) and hangs up must not be able to
  // EPIPE a sender caught between two separate sends.
  iovec parts[2] = {
      {const_cast<unsigned char*>(prefix), sizeof prefix},
      {const_cast<char*>(payload.data()), payload.size()},
  };
  msghdr msg{};
  msg.msg_iov = parts;
  msg.msg_iovlen = payload.empty() ? 1 : 2;
  std::size_t done = 0;
  const std::size_t total = sizeof prefix + payload.size();
  while (true) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
    if (done >= total) return true;
    // Partial write (frame larger than the socket buffer): advance the iovec.
    std::size_t skip = done;
    if (skip < sizeof prefix) {
      parts[0] = {const_cast<unsigned char*>(prefix) + skip,
                  sizeof prefix - skip};
      parts[1] = {const_cast<char*>(payload.data()), payload.size()};
      msg.msg_iov = parts;
      msg.msg_iovlen = payload.empty() ? 1 : 2;
    } else {
      skip -= sizeof prefix;
      parts[0] = {const_cast<char*>(payload.data()) + skip,
                  payload.size() - skip};
      msg.msg_iov = parts;
      msg.msg_iovlen = 1;
    }
  }
}

}  // namespace b2h::support
