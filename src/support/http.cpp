#include "support/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace b2h::support {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

enum class IoStatus { kOk, kEof, kTimeout, kError };

/// Read some bytes (at least one) into `out`; respects an optional
/// absolute deadline.  Same poll-then-recv shape as the framed transport.
IoStatus RecvSome(int fd, std::string* out,
                  const Clock::time_point* deadline) {
  char buffer[4096];
  while (true) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - Clock::now()).count();
      if (remaining <= 0) return IoStatus::kTimeout;
      timeout_ms = static_cast<int>(remaining);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int polled = ::poll(&pfd, 1, timeout_ms);
    if (polled == 0) return IoStatus::kTimeout;
    if (polled < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n == 0) return IoStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kError;
    }
    out->append(buffer, static_cast<std::size_t>(n));
    return IoStatus::kOk;
  }
}

bool SendAll(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

/// Parse the header block (everything before the blank line, CRLF line
/// endings; a bare LF is tolerated).  False on a malformed request line or
/// header.
bool ParseHeaderBlock(std::string_view block, HttpRequest* request) {
  std::size_t pos = 0;
  bool first_line = true;
  while (pos < block.size()) {
    std::size_t eol = block.find('\n', pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first_line) {
      // request-line: METHOD SP request-target SP HTTP-version
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return false;
      }
      request->method = std::string(line.substr(0, sp1));
      request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const std::string_view version = line.substr(sp2 + 1);
      if (request->method.empty() || request->target.empty() ||
          version.substr(0, 5) != "HTTP/") {
        return false;
      }
      first_line = false;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    request->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                  std::string(Trim(line.substr(colon + 1))));
  }
  return !first_line;  // a block with no request line is malformed
}

}  // namespace

const char* ToString(HttpStatus status) noexcept {
  switch (status) {
    case HttpStatus::kOk: return "ok";
    case HttpStatus::kClosed: return "closed";
    case HttpStatus::kMalformed: return "malformed";
    case HttpStatus::kOversized: return "oversized";
    case HttpStatus::kTimeout: return "timeout";
    case HttpStatus::kError: return "error";
  }
  return "error";
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

int ListenTcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
              std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    *error = Errno("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    *error = Errno("listen");
    ::close(fd);
    return -1;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    *error = Errno("getsockname");
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

int ConnectTcp(std::uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) < 0) {
    if (errno == EINTR) continue;
    *error = Errno("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

HttpStatus ReadHttpRequest(int fd, HttpRequest* request,
                           std::size_t max_body_bytes, int timeout_ms) {
  Clock::time_point deadline_storage;
  const Clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = Clock::now() + std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }

  // Accumulate until the blank line that ends the header block; the cap
  // keeps an endless header stream from growing the buffer unboundedly.
  std::string buffer;
  std::size_t header_end = std::string::npos;
  std::size_t body_start = 0;
  while (true) {
    header_end = buffer.find("\r\n\r\n");
    body_start = header_end + 4;
    if (header_end == std::string::npos) {
      header_end = buffer.find("\n\n");
      body_start = header_end + 2;
    }
    if (header_end != std::string::npos) break;
    if (buffer.size() > kMaxHttpHeaderBytes) return HttpStatus::kOversized;
    switch (RecvSome(fd, &buffer, deadline)) {
      case IoStatus::kOk: break;
      case IoStatus::kEof:
        return buffer.empty() ? HttpStatus::kClosed : HttpStatus::kMalformed;
      case IoStatus::kTimeout: return HttpStatus::kTimeout;
      case IoStatus::kError: return HttpStatus::kError;
    }
  }

  request->headers.clear();
  request->body.clear();
  if (!ParseHeaderBlock(std::string_view(buffer).substr(0, header_end),
                        request)) {
    return HttpStatus::kMalformed;
  }

  const std::string_view length_text = request->Header("content-length");
  std::size_t body_length = 0;
  if (!length_text.empty()) {
    for (const char c : length_text) {
      if (c < '0' || c > '9') return HttpStatus::kMalformed;
      body_length = body_length * 10 + static_cast<std::size_t>(c - '0');
      if (body_length > max_body_bytes) return HttpStatus::kOversized;
    }
  }
  request->body = buffer.substr(std::min(body_start, buffer.size()));
  if (request->body.size() > body_length) return HttpStatus::kMalformed;
  while (request->body.size() < body_length) {
    switch (RecvSome(fd, &request->body, deadline)) {
      case IoStatus::kOk: break;
      case IoStatus::kEof: return HttpStatus::kMalformed;
      case IoStatus::kTimeout: return HttpStatus::kTimeout;
      case IoStatus::kError: return HttpStatus::kError;
    }
    if (request->body.size() > body_length) return HttpStatus::kMalformed;
  }
  return HttpStatus::kOk;
}

bool WriteHttpResponse(int fd, int status_code, std::string_view reason,
                       std::string_view content_type, std::string_view body) {
  std::string head = "HTTP/1.1 " + std::to_string(status_code) + " " +
                     std::string(reason) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (!SendAll(fd, head)) return false;
  return body.empty() || SendAll(fd, body);
}

bool HttpCall(std::uint16_t port, std::string_view method,
              std::string_view target, std::string_view body,
              HttpResponse* response, int timeout_ms) {
  std::string error;
  const int fd = ConnectTcp(port, &error);
  if (fd < 0) return false;

  std::string request = std::string(method) + " " + std::string(target) +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request)) {
    ::close(fd);
    return false;
  }

  Clock::time_point deadline_storage;
  const Clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = Clock::now() + std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  // `Connection: close` means the response ends at EOF — no need to honor
  // Content-Length on the read side.
  std::string buffer;
  bool eof = false;
  while (!eof) {
    switch (RecvSome(fd, &buffer, deadline)) {
      case IoStatus::kOk: break;
      case IoStatus::kEof: eof = true; break;
      case IoStatus::kTimeout:
      case IoStatus::kError:
        ::close(fd);
        return false;
    }
  }
  ::close(fd);

  // "HTTP/1.1 NNN reason\r\n...headers...\r\n\r\nbody"
  constexpr std::string_view kVersion = "HTTP/1.1 ";
  if (buffer.size() < kVersion.size() + 3 ||
      std::string_view(buffer).substr(0, kVersion.size()) != kVersion) {
    return false;
  }
  int code = 0;
  for (std::size_t i = kVersion.size(); i < kVersion.size() + 3; ++i) {
    if (buffer[i] < '0' || buffer[i] > '9') return false;
    code = code * 10 + (buffer[i] - '0');
  }
  std::size_t header_end = buffer.find("\r\n\r\n");
  std::size_t body_start = header_end + 4;
  if (header_end == std::string::npos) {
    header_end = buffer.find("\n\n");
    body_start = header_end + 2;
  }
  if (header_end == std::string::npos) return false;
  response->status_code = code;
  response->body = buffer.substr(std::min(body_start, buffer.size()));
  return true;
}

}  // namespace b2h::support
