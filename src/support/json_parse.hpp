// Minimal bounds-checked JSON reader for the b2h-serve wire protocol.
//
// The repo already has a JSON *writer* discipline (support/json.hpp +
// bench/bench_json.hpp); this is the matching reader: a strict
// recursive-descent parser over a complete document with a hard recursion
// depth limit, returning a plain value tree.  Any syntax error, trailing
// garbage, or depth overflow yields nullopt — callers turn that into a
// structured `bad-json` protocol error, never an abort (regression-tested
// in test_serve).  Input size is bounded upstream by the frame size cap.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace b2h::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document (surrounding whitespace allowed).
  /// nullopt on any error; never throws on malformed input.
  [[nodiscard]] static std::optional<JsonValue> Parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool bool_value() const { return bool_; }
  [[nodiscard]] double number() const { return number_; }
  [[nodiscard]] const std::string& string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& array() const { return array_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }

  /// Object member lookup (first occurrence); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  // Typed member accessors with defaults, for tolerant request decoding.
  [[nodiscard]] std::string GetString(std::string_view key,
                                      std::string fallback = "") const;
  [[nodiscard]] double GetNumber(std::string_view key,
                                 double fallback = 0.0) const;
  [[nodiscard]] bool GetBool(std::string_view key, bool fallback) const;
  /// Member as a vector of strings (non-string elements skipped); empty
  /// when absent or not an array.
  [[nodiscard]] std::vector<std::string> GetStringArray(
      std::string_view key) const;

  // Construction helpers (used by tests; the parser is the main producer).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace b2h::support
