// Portable binary serialization for on-disk cache entries.
//
// Fixed-width little-endian encodings only, so an entry written on one
// machine decodes identically on any other.  Reads are bounds-checked: a
// truncated or over-long buffer makes the reader fail-stop (every
// subsequent Read* returns false) rather than fault — the disk cache treats
// any decode failure as a miss, never an error.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace b2h::support {

/// FNV-1a 64 over a byte range (payload checksums).
[[nodiscard]] inline std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t state = 1469598103934665603ull;
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    state *= 1099511628211ull;
  }
  return state;
}

class BinaryWriter {
 public:
  void U8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

  void U32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((value >> (i * 8)) & 0xff));
    }
  }

  void U64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((value >> (i * 8)) & 0xff));
    }
  }

  void I64(std::int64_t value) { U64(static_cast<std::uint64_t>(value)); }

  void F64(double value) {  // by bit pattern: round-trips exactly
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    U64(bits);
  }

  void Bool(bool value) { U8(value ? 1 : 0); }

  void Str(std::string_view text) {
    U64(text.size());
    out_.append(text.data(), text.size());
  }

  void VecU64(const std::vector<std::uint64_t>& values) {
    U64(values.size());
    for (const std::uint64_t v : values) U64(v);
  }

  [[nodiscard]] const std::string& buffer() const { return out_; }
  [[nodiscard]] std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* out) {
    if (!Need(1)) return false;
    *out = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool U32(std::uint32_t* out) {
    if (!Need(4)) return false;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (i * 8);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool U64(std::uint64_t* out) {
    if (!Need(8)) return false;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (i * 8);
    }
    pos_ += 8;
    *out = value;
    return true;
  }

  bool I64(std::int64_t* out) {
    std::uint64_t raw = 0;
    if (!U64(&raw)) return false;
    *out = static_cast<std::int64_t>(raw);
    return true;
  }

  bool F64(double* out) {
    std::uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof bits);
    return true;
  }

  bool Bool(bool* out) {
    std::uint8_t raw = 0;
    if (!U8(&raw)) return false;
    *out = raw != 0;
    return true;
  }

  bool Str(std::string* out) {
    std::uint64_t size = 0;
    if (!U64(&size) || !Need(size)) return false;
    out->assign(data_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return true;
  }

  bool VecU64(std::vector<std::uint64_t>* out) {
    std::uint64_t size = 0;
    // Each element is 8 bytes; reject sizes the remaining buffer cannot
    // hold before allocating.
    if (!U64(&size) || size > (data_.size() - pos_) / 8) return Fail();
    out->resize(static_cast<std::size_t>(size));
    for (auto& v : *out) {
      if (!U64(&v)) return false;
    }
    return true;
  }

  /// True while every read so far succeeded.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the whole buffer was consumed (trailing garbage detector).
  [[nodiscard]] bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(std::uint64_t bytes) {
    if (!ok_ || bytes > data_.size() - pos_) return Fail();
    return true;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace b2h::support
