// Bit-manipulation helpers shared by the ISA layer, the decompiler's
// bit-width analysis, and the synthesis area/delay models.
#pragma once

#include <bit>
#include <cstdint>

namespace b2h {

/// Extract bits [lo, lo+len) of `word` (len in 1..32).
[[nodiscard]] constexpr std::uint32_t Bits(std::uint32_t word, unsigned lo,
                                           unsigned len) noexcept {
  return (word >> lo) & (len >= 32 ? 0xFFFF'FFFFu : ((1u << len) - 1u));
}

/// Sign-extend the low `width` bits of `value` to 32 bits.
[[nodiscard]] constexpr std::int32_t SignExtend(std::uint32_t value,
                                                unsigned width) noexcept {
  if (width >= 32) return static_cast<std::int32_t>(value);
  const std::uint32_t sign = 1u << (width - 1);
  const std::uint32_t mask = (1u << width) - 1u;
  const std::uint32_t v = value & mask;
  return static_cast<std::int32_t>((v ^ sign) - sign);
}

/// Number of bits needed to represent `value` as an unsigned quantity
/// (minimum 1 so that a zero-valued wire still has a width).
[[nodiscard]] constexpr unsigned UnsignedWidth(std::uint32_t value) noexcept {
  return value == 0 ? 1u : static_cast<unsigned>(std::bit_width(value));
}

/// Number of bits needed to represent `value` in two's complement
/// (-2^(w-1) <= value < 2^(w-1)); e.g. -1 -> 1, 0 -> 1, 127 -> 8, -128 -> 8.
[[nodiscard]] constexpr unsigned SignedWidth(std::int32_t value) noexcept {
  const std::uint32_t magnitude =
      value < 0 ? ~static_cast<std::uint32_t>(value)
                : static_cast<std::uint32_t>(value);
  return static_cast<unsigned>(std::bit_width(magnitude)) + 1u;
}

[[nodiscard]] constexpr bool IsPowerOfTwo(std::uint32_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// log2 of a power of two (undefined for non-powers; callers must check).
[[nodiscard]] constexpr unsigned Log2(std::uint32_t value) noexcept {
  return static_cast<unsigned>(std::bit_width(value)) - 1u;
}

[[nodiscard]] constexpr unsigned PopCount(std::uint32_t value) noexcept {
  return static_cast<unsigned>(std::popcount(value));
}

/// Mask with the low `width` bits set (width in 0..32).
[[nodiscard]] constexpr std::uint32_t LowMask(unsigned width) noexcept {
  return width >= 32 ? 0xFFFF'FFFFu : ((1u << width) - 1u);
}

}  // namespace b2h
