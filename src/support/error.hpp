// Error handling primitives shared across all b2h libraries.
//
// The decompiler must be able to *fail gracefully* on binaries it cannot
// analyze (the paper reports two EEMBC benchmarks whose CDFG recovery fails
// because of indirect jumps).  Analysis entry points therefore report
// recoverable failures through Status/Result rather than exceptions;
// exceptions are reserved for programming errors (violated preconditions).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace b2h {

/// Thrown for violated invariants / programming errors, never for
/// data-dependent analysis failures.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Category of a recoverable analysis failure.
enum class ErrorKind {
  kNone,
  kIndirectJump,     ///< CDFG recovery hit an unresolvable indirect jump.
  kMalformedBinary,  ///< Undecodable instruction / out-of-range target.
  kUnsupported,      ///< Construct outside the synthesizable subset.
  kResource,         ///< Area or resource constraint impossible to satisfy.
  kParse,            ///< MiniC front-end diagnostics.
};

[[nodiscard]] const char* ToString(ErrorKind kind) noexcept;

/// Success-or-error result for analysis pipelines.
class Status {
 public:
  Status() = default;
  Status(ErrorKind kind, std::string message)
      : kind_(kind), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status Error(ErrorKind kind, std::string message) {
    return Status(kind, std::move(message));
  }

  [[nodiscard]] bool ok() const noexcept { return kind_ == ErrorKind::kNone; }
  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  explicit operator bool() const noexcept { return ok(); }

 private:
  ErrorKind kind_ = ErrorKind::kNone;
  std::string message_;
};

/// Value-or-error. Minimal expected<> substitute (C++20 toolchain).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      throw InternalError("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    Require(ok(), "Result::value() on error result");
    return *value_;
  }
  [[nodiscard]] T& value() & {
    Require(ok(), "Result::value() on error result");
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    Require(ok(), "Result::take() on error result");
    return std::move(*value_);
  }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  static void Require(bool cond, const char* what) {
    if (!cond) throw InternalError(what);
  }
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

/// Precondition check used throughout: throws InternalError on failure.
inline void Check(bool condition, const char* message) {
  if (!condition) throw InternalError(message);
}

}  // namespace b2h
