// Filesystem helpers for the on-disk artifact store.
//
// Everything here is failure-tolerant by design: the disk cache must treat
// an unreadable/unwritable filesystem as a cache miss, never as an error,
// so these helpers report failure through optionals/bools instead of
// throwing.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace b2h::support {

/// Whole file contents; nullopt when missing or unreadable.
[[nodiscard]] std::optional<std::string> ReadFile(
    const std::filesystem::path& path);

/// Crash-safe write: the content lands in a unique temp file in the target
/// directory, then moves into place with an atomic rename, so readers (and
/// crashed writers) never observe a partially written file.  Parent
/// directories are created as needed.
bool AtomicWriteFile(const std::filesystem::path& path,
                     std::string_view content);

struct FileInfo {
  std::filesystem::path path;
  std::uint64_t size = 0;
  std::filesystem::file_time_type mtime;
};

/// Every regular file under `root` (empty when root does not exist).
[[nodiscard]] std::vector<FileInfo> ListFilesRecursive(
    const std::filesystem::path& root);

/// Set a file's mtime to now (LRU touch on cache hits).  Best effort.
void TouchNow(const std::filesystem::path& path);

/// Remove a file, ignoring errors.  Returns true when it existed.
bool RemoveFileQuiet(const std::filesystem::path& path);

/// Total bytes in regular files under `root`.
[[nodiscard]] std::uint64_t DirectoryBytes(const std::filesystem::path& root);

}  // namespace b2h::support
