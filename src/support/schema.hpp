// Schema versions for every machine-readable JSON the repo emits beyond
// the bench records (those carry bench::kSchemaVersion — same discipline,
// separate lifecycle):
//
//   * report JSON: ToolchainRun::Json() and explore::ExploreResult::Json().
//     Bump whenever a field is added, removed, or reinterpreted, so
//     downstream consumers can detect format changes instead of silently
//     misreading them.
//   * wire JSON: the b2h-serve length-prefixed request/response protocol
//     (src/serve/protocol.*).  Every request must carry the matching
//     "schema"; a mismatch yields a structured `bad-schema` error, never a
//     guessed interpretation.  Responses embed report JSON, so a wire bump
//     is required whenever the report schema bumps.
#pragma once

namespace b2h {

/// Version stamped into ToolchainRun::Json() and ExploreResult::Json().
inline constexpr int kReportSchemaVersion = 1;

/// Version of the b2h-serve request/response wire format.
inline constexpr int kWireSchemaVersion = 1;

}  // namespace b2h
