#include "support/json_parse.hpp"

#include <cstdlib>
#include <cstring>

namespace b2h::support {

namespace {

/// Nesting ceiling: wire requests are shallow (2-3 levels); anything deeper
/// is hostile or broken input and must not be able to exhaust the stack.
constexpr int kMaxDepth = 64;

void AppendUtf8(std::string* out, unsigned code_point) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    if (!ParseValue(&value, 0)) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char expected) {
    if (AtEnd() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || AtEnd()) return false;
    switch (Peek()) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (AtEnd() || Peek() != '"' || !ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (true) {
      if (AtEnd()) return false;  // unterminated
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (!ConsumeLiteral("\\u")) return false;
            unsigned low = 0;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) return false;
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          AppendUtf8(out, code);
          break;
        }
        default: return false;
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') return false;
    // JSON forbids leading zeros: "0" and "0.5" parse, "01" does not.
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // The slice is a valid JSON number by construction; strtod on a
    // NUL-terminated copy converts it (locale-independent for this subset).
    const std::string number(text_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = std::strtod(number.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_string()) return fallback;
  return value->string();
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_number()) return fallback;
  return value->number();
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_bool()) return fallback;
  return value->bool_value();
}

std::vector<std::string> JsonValue::GetStringArray(std::string_view key) const {
  std::vector<std::string> out;
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_array()) return out;
  for (const JsonValue& element : value->array()) {
    if (element.is_string()) out.push_back(element.string());
  }
  return out;
}

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

}  // namespace b2h::support
