// Minimal HTTP/1.1 server-side helpers for the b2h-serve introspection
// plane (src/serve/): loopback TCP listen/connect plus one-request-per-
// connection parse and response writing.  Deliberately tiny — no keep-alive,
// no chunked transfer, no TLS: the plane exists so an operator can `curl`
// /metrics, /healthz, /trace and POST partition/explore bodies; every
// response carries `Connection: close` and the connection ends there
// (mirroring the framed path's connection-per-client simplicity without its
// statefulness).
//
// Bounded by construction: the header block and the body each have a byte
// cap, so a hostile Content-Length or an endless header stream can never
// balloon RSS — oversized input is reported as kOversized and the server
// answers 413 and closes, regression-tested next to the framed-abuse suite.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace b2h::support {

/// Header-block cap: request line + headers must fit in this many bytes.
inline constexpr std::size_t kMaxHttpHeaderBytes = 16u << 10;

/// Outcome of reading one HTTP request (taxonomy parallels FrameStatus).
enum class HttpStatus {
  kOk,         ///< one complete request parsed
  kClosed,     ///< clean EOF before any request byte
  kMalformed,  ///< unparseable request line / headers / Content-Length
  kOversized,  ///< header block or declared body beyond the cap
  kTimeout,    ///< poll timeout before a complete request
  kError,      ///< errno-level failure
};

[[nodiscard]] const char* ToString(HttpStatus status) noexcept;

/// One parsed request.  Header names are lowercased; values are trimmed of
/// surrounding whitespace.  `target` is the raw request-target (path +
/// optional query), not URL-decoded.
struct HttpRequest {
  std::string method;
  std::string target;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value for `name` (lowercase), or "" when absent.
  [[nodiscard]] std::string_view Header(std::string_view name) const;
};

/// Listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port); the
/// introspection plane is loopback-only by design.  On success returns the
/// listening fd and stores the bound port in `*bound_port`; on failure
/// returns -1 with `*error` describing why.
[[nodiscard]] int ListenTcp(std::uint16_t port, int backlog,
                            std::uint16_t* bound_port, std::string* error);

/// Connect to 127.0.0.1:`port`.  Returns the fd, or -1 with `*error` set.
[[nodiscard]] int ConnectTcp(std::uint16_t port, std::string* error);

/// Read and parse one request from `fd`.  `timeout_ms < 0` blocks
/// indefinitely.  A body is read only when Content-Length says so (no
/// chunked transfer); a declared length beyond `max_body_bytes` yields
/// kOversized without reading the body.
[[nodiscard]] HttpStatus ReadHttpRequest(int fd, HttpRequest* request,
                                         std::size_t max_body_bytes,
                                         int timeout_ms = -1);

/// Write a complete `Connection: close` response.  False on any send error.
[[nodiscard]] bool WriteHttpResponse(int fd, int status_code,
                                     std::string_view reason,
                                     std::string_view content_type,
                                     std::string_view body);

/// What one client call got back.
struct HttpResponse {
  int status_code = 0;
  std::string body;
};

/// One loopback client call: connect, send `method target` with `body`
/// (Content-Length set, `Connection: close`), read to EOF, split status
/// and body.  For the load generator and the introspection tests — not a
/// general HTTP client.  False on connect/send/timeout/parse failure.
[[nodiscard]] bool HttpCall(std::uint16_t port, std::string_view method,
                            std::string_view target, std::string_view body,
                            HttpResponse* response, int timeout_ms = 10'000);

}  // namespace b2h::support
