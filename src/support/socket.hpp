// Unix-domain stream sockets + length-prefixed framing — the transport of
// the b2h-serve wire protocol (src/serve/).
//
// Frame format: a 4-byte little-endian payload length, then the payload
// (JSON text by convention; the framing layer is content-agnostic).  The
// length is bounded by a per-endpoint cap so a hostile or corrupted prefix
// can never cause an unbounded allocation: an oversized prefix is reported
// as kOversized (the server answers with a structured error and drops only
// that connection — regression-tested in test_serve).
//
// All helpers are EINTR-safe, handle short reads/writes, and never raise
// SIGPIPE (sends use MSG_NOSIGNAL).  Read timeouts poll() first so a
// deadline-carrying client can give up without wedging on a dead peer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace b2h::support {

/// Default frame-size cap: generous for explore reports over the full
/// suite, small enough that a malicious length prefix cannot balloon RSS.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

/// Outcome of a framed read.
enum class FrameStatus {
  kOk,         ///< one complete frame delivered
  kClosed,     ///< clean EOF before any frame byte (peer hung up)
  kTruncated,  ///< EOF mid-frame (peer died while sending)
  kOversized,  ///< length prefix beyond the cap; stream no longer in sync
  kTimeout,    ///< poll timeout expired before a complete frame
  kError,      ///< errno-level failure
};

[[nodiscard]] const char* ToString(FrameStatus status) noexcept;

/// Create, bind, and listen on a unix socket at `path`.  An existing
/// socket file at `path` is unlinked first (the daemon owns its socket
/// path; stale files from a crashed predecessor must not block restart).
/// Returns the listening fd, or -1 with `*error` describing the failure.
[[nodiscard]] int ListenUnix(const std::string& path, int backlog,
                             std::string* error);

/// Connect to a unix socket.  Returns the fd, or -1 with `*error` set.
[[nodiscard]] int ConnectUnix(const std::string& path, std::string* error);

/// Read one frame into `*payload`.  `timeout_ms < 0` blocks indefinitely.
/// On kOversized the prefix was consumed but the payload was not — the
/// stream is out of sync and the connection should be closed after any
/// error reply.
[[nodiscard]] FrameStatus ReadFrame(int fd, std::string* payload,
                                    std::uint32_t max_frame_bytes,
                                    int timeout_ms = -1);

/// Write one frame (length prefix + payload).  False on any error,
/// including a payload larger than `max_frame_bytes`.
[[nodiscard]] bool WriteFrame(int fd, std::string_view payload,
                              std::uint32_t max_frame_bytes);

}  // namespace b2h::support
