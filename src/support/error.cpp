#include "support/error.hpp"

namespace b2h {

const char* ToString(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kNone: return "ok";
    case ErrorKind::kIndirectJump: return "indirect-jump";
    case ErrorKind::kMalformedBinary: return "malformed-binary";
    case ErrorKind::kUnsupported: return "unsupported";
    case ErrorKind::kResource: return "resource";
    case ErrorKind::kParse: return "parse";
  }
  return "unknown";
}

}  // namespace b2h
