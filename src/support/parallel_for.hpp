// Minimal work-stealing-free parallel index loop, shared by the Toolchain
// batch API and the exploration engine.  Results must be written into
// per-index slots: index order is unspecified but every index runs exactly
// once, so fan-outs stay deterministic regardless of the thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace b2h::support {

/// Run fn(0..n-1) on up to `threads` workers (0 = hardware concurrency,
/// 1 = serial on the calling thread).
inline void ParallelFor(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers =
      threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (workers == 0) workers = 1;
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace b2h::support
