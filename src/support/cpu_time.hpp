// Process-CPU timing for micro-measurements (bench + perf tests).
//
// Wall clock is useless for single-digit-percent comparisons on shared
// machines: sibling processes may own every other core, and scheduler
// preemption lands in one variant's samples.  Process CPU time charges only
// cycles this process actually ran.
#pragma once

#include <ctime>
#include <utility>

namespace b2h::support {

/// CPU seconds consumed by this process so far.
[[nodiscard]] inline double ProcessCpuSeconds() {
  timespec now{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &now);
  return static_cast<double>(now.tv_sec) +
         static_cast<double>(now.tv_nsec) * 1e-9;
}

/// CPU seconds `fn` takes to run.
template <typename Fn>
[[nodiscard]] double CpuSecondsOf(Fn&& fn) {
  const double start = ProcessCpuSeconds();
  std::forward<Fn>(fn)();
  return ProcessCpuSeconds() - start;
}

}  // namespace b2h::support
