// Process-CPU timing for micro-measurements (bench + perf tests).
//
// Wall clock is useless for single-digit-percent comparisons on shared
// machines: sibling processes may own every other core, and scheduler
// preemption lands in one variant's samples.  Process CPU time charges only
// cycles this process actually ran.
#pragma once

#include <algorithm>
#include <cstddef>
#include <ctime>
#include <utility>
#include <vector>

namespace b2h::support {

/// CPU seconds consumed by this process so far.
[[nodiscard]] inline double ProcessCpuSeconds() {
  timespec now{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &now);
  return static_cast<double>(now.tv_sec) +
         static_cast<double>(now.tv_nsec) * 1e-9;
}

/// CPU seconds `fn` takes to run.
template <typename Fn>
[[nodiscard]] double CpuSecondsOf(Fn&& fn) {
  const double start = ProcessCpuSeconds();
  std::forward<Fn>(fn)();
  return ProcessCpuSeconds() - start;
}

/// Knobs for MeasureOverhead.  The defaults match the detector-overhead
/// bound's needs; benches that only record a trajectory can drop
/// `attempts` to 1 and `early_exit_below` to 0.
struct OverheadOptions {
  int samples = 8;    ///< interleaved min-of-N samples per attempt
  int attempts = 3;   ///< whole-measurement retries (keeps the minimum)
  /// Stop retrying once the measured overhead drops to/below this; an
  /// assertion bound goes here so a passing measurement exits early.
  double early_exit_below = 0.0;
  /// Use the median of per-pair ratios instead of min(variant)/min(plain).
  /// Min-of-N assumes noise only ever inflates a sample, which holds for a
  /// single-threaded loop but not for multi-threaded workloads measured
  /// with process CPU time: worker wake/park costs land in the measured
  /// quantity itself and swing both ways.  Adjacent baseline/variant pairs
  /// see the same machine state, so the median pair ratio is robust there.
  bool median = false;

  /// Out: the samples behind the returned minimum overhead (the winning
  /// attempt's best baseline/variant times), so callers can print times
  /// that are consistent with the ratio.
  double plain_seconds = 0.0;
  double variant_seconds = 0.0;
};

/// Relative CPU-time overhead of `variant` over `baseline`:
/// min(variant)/min(plain) - 1.
///
/// Measurement discipline (shared by test_detector_overhead and
/// bench_dynamic — keep them honest with ONE harness): samples are
/// interleaved (baseline, variant, baseline, ...) so slow drift lands on
/// both sides, and minima are used throughout because scheduler/frequency
/// noise only ever inflates a sample — it cannot make the variant look
/// cheaper than it is.  More samples therefore tighten the measurement
/// monotonically toward the true ratio.
template <typename Baseline, typename Variant>
[[nodiscard]] double MeasureOverhead(Baseline&& baseline, Variant&& variant,
                                     OverheadOptions& options) {
  if (options.median) {
    // One flat pass of interleaved pairs; each attempt-block checks the
    // running median so a measurement already inside the budget stays cheap.
    std::vector<double> ratios;
    double best_plain = 1e9, best_variant = 1e9;
    double overhead = 1e9;
    for (int attempt = 0; attempt < options.attempts; ++attempt) {
      for (int sample = 0; sample < options.samples; ++sample) {
        const double plain = CpuSecondsOf(baseline);
        const double hooked = CpuSecondsOf(variant);
        if (plain <= 0.0) continue;  // clock quantum too coarse; skip pair
        ratios.push_back(hooked / plain - 1.0);
        if (plain < best_plain) best_plain = plain;
        if (hooked < best_variant) best_variant = hooked;
      }
      if (ratios.empty()) continue;
      std::vector<double> sorted = ratios;
      const std::size_t mid = sorted.size() / 2;
      std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
      overhead = sorted[mid];
      if (overhead <= options.early_exit_below && ratios.size() >= 8) break;
    }
    options.plain_seconds = best_plain;
    options.variant_seconds = best_variant;
    return overhead;
  }
  double overhead = 1e9;
  for (int attempt = 0; attempt < options.attempts &&
                        overhead > options.early_exit_below;
       ++attempt) {
    double plain = 1e9;
    double hooked = 1e9;
    for (int sample = 0; sample < options.samples; ++sample) {
      plain = std::min(plain, CpuSecondsOf(baseline));
      hooked = std::min(hooked, CpuSecondsOf(variant));
    }
    if (plain <= 0.0) continue;  // clock quantum too coarse; retry
    const double attempt_overhead = hooked / plain - 1.0;
    if (attempt_overhead < overhead) {
      overhead = attempt_overhead;
      options.plain_seconds = plain;
      options.variant_seconds = hooked;
    }
  }
  return overhead;
}

}  // namespace b2h::support
