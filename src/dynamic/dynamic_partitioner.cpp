#include "dynamic/dynamic_partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "decomp/alias.hpp"
#include "decomp/lifter.hpp"
#include "decomp/pass_manager.hpp"
#include "dynamic/hot_region.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "mips/isa.hpp"
#include "obs/obs.hpp"
#include "synth/hw_region.hpp"

namespace b2h::dynamic {

namespace {

std::string Hex(std::uint32_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%x", value);
  return buffer;
}

/// Absolute per-range counters read off the live profile + instruction
/// encodings (no IR, no simulator hot-path support needed).  Differences of
/// two snapshots give exactly what a region cost within a time window.
struct RangeSnapshot {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t header_execs = 0;
  std::uint64_t latch_reentries = 0;  ///< latch executions back to header
};

RangeSnapshot SnapshotRange(const mips::SoftBinary& binary,
                            const mips::ExecProfile& profile,
                            std::uint32_t lo, std::uint32_t hi,
                            std::uint32_t header_pc) {
  RangeSnapshot snap;
  for (std::uint32_t pc = lo; pc < hi; pc += 4) {
    const std::size_t word = (pc - mips::kTextBase) / 4u;
    if (word >= profile.instr_count.size()) break;
    snap.instructions += profile.instr_count[word];
    snap.cycles += profile.cycle_count[word];
    const auto instr = mips::Decode(binary.text[word]);
    if (!instr.has_value()) continue;
    if (mips::IsLoad(instr->op) || mips::IsStore(instr->op)) {
      snap.mem_accesses += profile.instr_count[word];
    }
    // Latches: in-range control transfers back to the header.  Every header
    // execution NOT fed from inside the range is an entry from outside.
    if (mips::IsBranch(instr->op) &&
        mips::BranchTarget(pc, *instr) == header_pc) {
      snap.latch_reentries += profile.branch_taken[word];
    } else if (instr->op == mips::Op::kJ &&
               mips::JumpTarget(pc, *instr) == header_pc) {
      snap.latch_reentries += profile.instr_count[word];
    }
  }
  // In-range fallthrough into the header (rotated loop layouts, and helper
  // calls just before the header whose return resumes at it) is a re-entry,
  // not a kernel invocation.
  if (header_pc > lo) {
    const std::size_t prev = (header_pc - 4 - mips::kTextBase) / 4u;
    if (prev < profile.instr_count.size()) {
      if (const auto instr = mips::Decode(binary.text[prev])) {
        if (mips::IsBranch(instr->op)) {
          snap.latch_reentries += profile.branch_not_taken[prev];
        } else if (instr->op == mips::Op::kJal) {
          snap.latch_reentries += profile.instr_count[prev];
        } else if (!mips::IsDirectJump(instr->op) &&
                   !mips::IsIndirectJump(instr->op)) {
          snap.latch_reentries += profile.instr_count[prev];
        }
      }
    }
  }
  const std::size_t header_word = (header_pc - mips::kTextBase) / 4u;
  if (header_word < profile.instr_count.size()) {
    snap.header_execs = profile.instr_count[header_word];
  }
  return snap;
}

/// Post-swap window accounting: the delta between two snapshots.
RegionWindowStats WindowBetween(std::uint32_t lo, std::uint32_t hi,
                                std::uint32_t header_pc,
                                const RangeSnapshot& start,
                                const RangeSnapshot& end) {
  RegionWindowStats stats;
  stats.lo = lo;
  stats.hi = hi;
  stats.header_pc = header_pc;
  stats.instructions = end.instructions - start.instructions;
  stats.cycles = end.cycles - start.cycles;
  stats.mem_accesses = end.mem_accesses - start.mem_accesses;
  stats.header_hits = end.header_execs - start.header_execs;
  const std::uint64_t reentries = end.latch_reentries - start.latch_reentries;
  stats.entries =
      stats.header_hits > reentries ? stats.header_hits - reentries : 0u;
  return stats;
}

/// The online partitioner: observes backward branches, detects hot headers,
/// and performs the decompile -> synthesize -> swap-in sequence from inside
/// the simulator callback.  All state it reads is deterministic, so the
/// whole dynamic run is reproducible.
class OnlinePartitioner final : public mips::RunObserver {
 public:
  struct Mapped {
    std::string name;
    std::uint32_t header_pc = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    partition::DynamicKernelModel model;
    double area_gates = 0.0;
    bool evicted = false;
    RangeSnapshot at_swap;   ///< profile counters when the kernel went live
    RangeSnapshot at_evict;  ///< profile counters at eviction (if evicted)
  };

  OnlinePartitioner(std::shared_ptr<const mips::SoftBinary> binary,
                    const partition::Platform& platform,
                    const DynamicOptions& options,
                    const decomp::PassManager& pipeline)
      : binary_(std::move(binary)),
        platform_(platform),
        options_(options),
        pipeline_(pipeline),
        cache_(options.policy.detector_entries, options.policy.hot_threshold),
        function_entries_(decomp::FunctionEntries(*binary_)) {}

  void OnBackwardBranches(std::span<const mips::BranchEvent> events,
                          const mips::RunResult& so_far) override {
    for (const mips::BranchEvent& event : events) {
      const auto hot = cache_.Observe(event.target_pc, event.from_pc);
      if (hot.has_value()) TrySwapIn(*hot, so_far);
    }
  }

  [[nodiscard]] const std::vector<Mapped>& mapped() const { return mapped_; }
  [[nodiscard]] const std::vector<SwapEvent>& swaps() const { return swaps_; }
  [[nodiscard]] const std::vector<std::string>& rejected() const {
    return rejected_;
  }
  [[nodiscard]] std::uint64_t detector_events() const {
    return cache_.events();
  }
  [[nodiscard]] double online_cad_ms() const { return online_cad_ms_; }
  [[nodiscard]] double time_to_first_kernel_ms() const {
    return time_to_first_kernel_ms_;
  }
  /// Host CAD milliseconds spent up to and including the first successful
  /// swap (earlier rejected attempts included): the wall-clock input to the
  /// simulated time-to-first-kernel conversion.
  [[nodiscard]] double cad_ms_to_first_kernel() const {
    return cad_ms_to_first_kernel_;
  }

  void StartWallClock() { wall_.Reset(); }

 private:
  void Reject(std::uint32_t header_pc, const std::string& reason) {
    obs::Registry::Global().counter("dynamic.rejections").Add();
    rejected_.push_back(Hex(header_pc) + ": " + reason);
  }

  /// Observed value (saved seconds) of an active kernel so far, for the
  /// eviction plan's value-density ordering.
  [[nodiscard]] double SavedSecondsSoFar(
      const Mapped& kernel, const mips::ExecProfile& profile) const {
    const RangeSnapshot now = SnapshotRange(*binary_, profile, kernel.lo,
                                            kernel.hi, kernel.header_pc);
    const RegionWindowStats stats = WindowBetween(
        kernel.lo, kernel.hi, kernel.header_pc, kernel.at_swap, now);
    const double cpu_hz = platform_.cpu.clock_mhz * 1e6;
    const double sw_seconds = static_cast<double>(stats.cycles) / cpu_hz;
    // Same in-flight-invocation clamp as PriceDynamicKernel.
    const std::uint64_t invocations =
        stats.header_hits > 0 ? std::max<std::uint64_t>(1, stats.entries)
                              : stats.entries;
    return sw_seconds -
           partition::DynamicHwSeconds(
               platform_, kernel.model,
               static_cast<double>(stats.header_hits),
               static_cast<double>(invocations),
               static_cast<double>(stats.mem_accesses));
  }

  void TrySwapIn(const HotEvent& hot, const mips::RunResult& so_far) {
    const std::uint32_t header = hot.header_pc;
    if (!attempted_.insert(header).second) return;  // one decision per header

    // --- Incremental decompilation: just the enclosing function. ---------
    const obs::Stopwatch cad_watch;
    auto entry_it = std::upper_bound(function_entries_.begin(),
                                     function_entries_.end(), header);
    if (entry_it == function_entries_.begin()) {
      Reject(header, "no enclosing function");
      return;
    }
    const std::uint32_t root_entry = *std::prev(entry_it);
    double decompile_ms = 0.0;
    auto program = [&] {
      obs::ScopedSpan span("dynamic.decompile", "dynamic");
      span.Arg("header_pc", static_cast<std::uint64_t>(header));
      auto result = pipeline_.RunAt(binary_, root_entry, &so_far.profile);
      decompile_ms = cad_watch.Millis();
      return result;
    }();
    online_cad_ms_ += decompile_ms;
    if (!program.ok()) {
      Reject(header, "decompilation failed: " + program.status().message());
      return;
    }

    // --- Locate the hot loop in the recovered CDFG. -----------------------
    const ir::Function& root = *program.value().module.main;
    ir::DominatorTree dom(root);
    ir::LoopForest forest(root, dom);
    forest.AnnotateProfile();
    const ir::Loop* loop = nullptr;
    for (const auto& candidate : forest.loops()) {
      if (candidate->header->start_pc == header) {
        loop = candidate.get();
        break;
      }
    }
    if (loop == nullptr) {
      Reject(header, "no recovered loop at this header");
      return;
    }

    // --- Synthesize the region. ------------------------------------------
    const obs::Stopwatch synth_watch;
    obs::ScopedSpan synth_span("dynamic.synth", "dynamic");
    synth_span.Arg("header_pc", static_cast<std::uint64_t>(header));
    synth::HwRegion region = synth::ExtractLoopRegion(root, *loop);
    decomp::AliasAnalysis alias(root, &binary_->symbols);
    auto synthesized = synth::Synthesize(region, &alias, options_.synth);
    const double synth_ms = synth_watch.Millis();
    synth_span.Close();
    online_cad_ms_ += synth_ms;
    if (!synthesized.ok()) {
      Reject(header, "synthesis failed: " + synthesized.status().message());
      return;
    }
    const synth::SynthesizedRegion& kernel = synthesized.value();
    const double clock_mhz =
        std::min(kernel.clock_mhz, platform_.fpga.clock_mhz_cap);

    // --- Binary extent of the loop: detector latch + CDFG provenance. -----
    std::uint32_t lo = header;
    std::uint32_t hi = hot.max_latch_pc + 4;
    for (const ir::Block* block : region.blocks) {
      if (block->start_pc != 0) {
        lo = std::min(lo, block->start_pc);
        hi = std::max(hi, block->start_pc + 4);
      }
      const ir::Instr* term = block->has_terminator() ? block->terminator()
                                                      : nullptr;
      if (term != nullptr && term->src_pc != 0) {
        hi = std::max(hi, term->src_pc + 4);
      }
    }
    hi = std::min(hi, binary_->text_end());

    // --- Per-iteration costs from the partial profile. --------------------
    const RangeSnapshot at_swap =
        SnapshotRange(*binary_, so_far.profile, lo, hi, header);
    const std::uint64_t iterations =
        std::max<std::uint64_t>(1, at_swap.header_execs);
    const double sw_cpi = static_cast<double>(at_swap.cycles) /
                          static_cast<double>(iterations);
    const double mem_per_iter = static_cast<double>(at_swap.mem_accesses) /
                                static_cast<double>(iterations);
    const std::uint64_t annotated_iters =
        std::max<std::uint64_t>(1, loop->header->exec_count);
    const std::uint64_t entries =
        std::max<std::uint64_t>(1, loop->entry_count);

    partition::DynamicKernelModel model;
    model.hw_cycles_per_iteration = static_cast<double>(kernel.hw_cycles) /
                                    static_cast<double>(annotated_iters);
    model.kernel_clock_mhz = clock_mhz;
    model.iterations_per_entry = static_cast<double>(annotated_iters) /
                                 static_cast<double>(entries);
    model.mem_accesses_per_iteration = mem_per_iter;
    model.array_footprint_words = partition::ArrayFootprintWords(
        alias, alias.RegionsIn(*loop), *binary_);

    const double projected =
        partition::ProjectedIterationSpeedup(platform_, sw_cpi, model);
    if (projected < options_.policy.min_kernel_speedup) {
      char text[64];
      std::snprintf(text, sizeof text, "%.2f", projected);
      Reject(header, std::string("not profitable in hardware (projected ") +
                         text + "x)");
      return;
    }

    // --- Overlap analysis: subsume contained kernels, reject otherwise. ---
    std::vector<std::size_t> subsumed;  // indices into mapped_
    for (std::size_t i = 0; i < mapped_.size(); ++i) {
      if (mapped_[i].evicted) continue;
      const bool contained = mapped_[i].lo >= lo && mapped_[i].hi <= hi;
      const bool disjoint = mapped_[i].hi <= lo || mapped_[i].lo >= hi;
      if (contained && options_.policy.allow_upgrade) {
        subsumed.push_back(i);
      } else if (!disjoint) {
        Reject(header,
               "overlaps mapped kernel " + Hex(mapped_[i].header_pc));
        return;
      }
    }

    // --- Area: evict lower-value kernels if the budget is exhausted. ------
    double area_used = 0.0;
    std::vector<partition::ActiveKernel> active;
    for (std::size_t i = 0; i < mapped_.size(); ++i) {
      if (mapped_[i].evicted) continue;
      if (std::find(subsumed.begin(), subsumed.end(), i) != subsumed.end()) {
        continue;  // being replaced regardless
      }
      area_used += mapped_[i].area_gates;
      partition::ActiveKernel entry;
      entry.id = i;
      entry.area_gates = mapped_[i].area_gates;
      entry.value_density =
          mapped_[i].area_gates > 0.0
              ? SavedSecondsSoFar(mapped_[i], so_far.profile) /
                    mapped_[i].area_gates
              : 0.0;
      active.push_back(entry);
    }
    const double cpu_hz = platform_.cpu.clock_mhz * 1e6;
    const double saved_per_iter =
        sw_cpi / cpu_hz -
        partition::DynamicHwSeconds(
            platform_, model, 1.0,
            1.0 / std::max(1.0, model.iterations_per_entry), mem_per_iter);
    const double candidate_density =
        kernel.area.total_gates > 0.0
            ? saved_per_iter * static_cast<double>(iterations) /
                  kernel.area.total_gates
            : 0.0;
    const auto eviction_plan = partition::PlanEviction(
        options_.policy, std::move(active), platform_.fpga.budget_gates(),
        area_used, kernel.area.total_gates, candidate_density);
    if (!eviction_plan.has_value()) {
      Reject(header, "area constraint violated");
      return;
    }

    // --- Commit: evict, map, record. --------------------------------------
    obs::ScopedSpan swap_span("dynamic.swap", "dynamic");
    swap_span.Arg("header_pc", static_cast<std::uint64_t>(header))
        .Arg("area_gates", kernel.area.total_gates)
        .Arg("projected_speedup", projected);
    SwapEvent swap;
    const auto evict = [&](std::size_t i) {
      mapped_[i].evicted = true;
      mapped_[i].at_evict =
          SnapshotRange(*binary_, so_far.profile, mapped_[i].lo,
                        mapped_[i].hi, mapped_[i].header_pc);
      swap.evicted_headers.push_back(mapped_[i].header_pc);
    };
    for (std::size_t i : subsumed) evict(i);
    for (std::size_t i : *eviction_plan) evict(i);

    Mapped entry;
    entry.name = region.name;
    entry.header_pc = header;
    entry.lo = lo;
    entry.hi = hi;
    entry.model = model;
    entry.area_gates = kernel.area.total_gates;
    entry.at_swap = at_swap;
    mapped_.push_back(std::move(entry));

    swap.header_pc = header;
    swap.range_lo = lo;
    swap.range_hi = hi;
    swap.at_instruction = so_far.instructions;
    swap.at_cycle = so_far.cycles;
    swap.detect_count = hot.count;
    swap.area_gates = kernel.area.total_gates;
    swap.clock_mhz = clock_mhz;
    swap.hw_cycles_per_iteration = model.hw_cycles_per_iteration;
    swap.dma_staged = partition::PrefersDmaStaging(platform_, model);
    swap.projected_speedup = projected;
    swap.decompile_ms = decompile_ms;
    swap.synth_ms = synth_ms;
    swaps_.push_back(std::move(swap));
    obs::Registry::Global().counter("dynamic.swaps").Add();
    if (swaps_.size() == 1) {
      time_to_first_kernel_ms_ = wall_.Millis();
      cad_ms_to_first_kernel_ = online_cad_ms_;
    }
  }

  std::shared_ptr<const mips::SoftBinary> binary_;
  const partition::Platform& platform_;
  const DynamicOptions& options_;
  const decomp::PassManager& pipeline_;
  HotRegionCache cache_;
  std::vector<std::uint32_t> function_entries_;
  std::set<std::uint32_t> attempted_;
  std::vector<Mapped> mapped_;
  std::vector<SwapEvent> swaps_;
  std::vector<std::string> rejected_;
  double online_cad_ms_ = 0.0;
  double time_to_first_kernel_ms_ = 0.0;
  double cad_ms_to_first_kernel_ = 0.0;
  obs::Stopwatch wall_;
};

}  // namespace

DynamicPartitioner::DynamicPartitioner(partition::Platform platform,
                                       DynamicOptions options,
                                       std::string platform_name)
    : platform_(std::move(platform)),
      options_(std::move(options)),
      platform_name_(std::move(platform_name)) {}

Result<DynamicRun> DynamicPartitioner::Run(
    std::shared_ptr<const mips::SoftBinary> binary,
    std::string binary_name) const {
  Check(binary != nullptr, "DynamicPartitioner: null binary");
  auto manager = decomp::PassManager::FromSpec(options_.pipeline);
  if (!manager.ok()) return manager.status();
  const decomp::PassManager pipeline =
      std::move(manager).take().SetVerify(options_.verify_ir);

  mips::Simulator sim(*binary, platform_.cpu.cycle_model);
  OnlinePartitioner online(binary, platform_, options_, pipeline);
  obs::ScopedSpan span("dynamic.run", "dynamic");
  span.Arg("binary", binary_name).Arg("platform", platform_name_);
  online.StartWallClock();
  mips::RunResult run =
      sim.RunInstrumented({}, options_.max_instructions, &online);
  if (run.reason != mips::HaltReason::kReturned) {
    return Status::Error(ErrorKind::kMalformedBinary,
                         "dynamic run did not complete: " + run.fault_message);
  }

  DynamicRun out;
  out.binary_name = std::move(binary_name);
  out.platform_name = platform_name_;
  out.run = std::move(run);
  out.swaps = online.swaps();
  out.rejected = online.rejected();
  out.detector_events = online.detector_events();
  out.online_cad_ms = online.online_cad_ms();
  out.time_to_first_kernel_ms = online.time_to_first_kernel_ms();
  // Simulated-time CAD accounting: convert the host wall-clock CAD cost
  // through the policy's cycles-per-millisecond model.
  const double cad_rate = options_.policy.cad_cycles_per_ms;
  out.cad_simulated_cycles = static_cast<std::uint64_t>(
      std::llround(online.online_cad_ms() * cad_rate));
  if (!out.swaps.empty()) {
    out.time_to_first_kernel_cycles =
        out.swaps.front().at_cycle +
        static_cast<std::uint64_t>(
            std::llround(online.cad_ms_to_first_kernel() * cad_rate));
  }

  std::vector<partition::KernelEstimate> estimates;
  for (const auto& mapped : online.mapped()) {
    DynamicKernel kernel;
    kernel.name = mapped.name;
    kernel.header_pc = mapped.header_pc;
    kernel.evicted = mapped.evicted;
    const RangeSnapshot end =
        mapped.evicted
            ? mapped.at_evict
            : SnapshotRange(*binary, out.run.profile, mapped.lo, mapped.hi,
                            mapped.header_pc);
    kernel.observed = WindowBetween(mapped.lo, mapped.hi, mapped.header_pc,
                                    mapped.at_swap, end);
    kernel.estimate = partition::PriceDynamicKernel(
        mapped.name, platform_, mapped.model, kernel.observed.cycles,
        kernel.observed.header_hits, kernel.observed.entries,
        kernel.observed.mem_accesses, mapped.area_gates);
    estimates.push_back(kernel.estimate);
    out.kernels.push_back(std::move(kernel));
  }
  out.estimate = partition::CombineEstimates(platform_, out.run.cycles,
                                             std::move(estimates));
  // Copy back the derived per-kernel timings for the report.
  for (std::size_t i = 0; i < out.kernels.size(); ++i) {
    out.kernels[i].estimate = out.estimate.kernels[i];
  }
  return out;
}

std::string DynamicRun::Report() const {
  std::ostringstream out;
  char line[256];
  out << "=== dynamic run: " << binary_name << " on " << platform_name
      << " ===\n";
  std::snprintf(line, sizeof line,
                "run: %llu instructions, %llu cycles, returned %d\n",
                static_cast<unsigned long long>(run.instructions),
                static_cast<unsigned long long>(run.cycles),
                run.return_value);
  out << line;
  std::snprintf(line, sizeof line,
                "detector: %llu backward-branch events, %zu swap(s), "
                "%zu rejection(s)\n",
                static_cast<unsigned long long>(detector_events),
                swaps.size(), rejected.size());
  out << line;
  for (std::size_t i = 0; i < swaps.size(); ++i) {
    const SwapEvent& swap = swaps[i];
    std::snprintf(line, sizeof line,
                  "swap %zu: header=0x%x range=[0x%x,0x%x) at instr=%llu "
                  "area=%.0f clock=%.1fMHz cpi=%.2f mem=%s projected=%.1fx",
                  i + 1, swap.header_pc, swap.range_lo, swap.range_hi,
                  static_cast<unsigned long long>(swap.at_instruction),
                  swap.area_gates, swap.clock_mhz,
                  swap.hw_cycles_per_iteration,
                  swap.dma_staged ? "dma-staged" : "bus",
                  swap.projected_speedup);
    out << line;
    if (!swap.evicted_headers.empty()) {
      out << " evicted=";
      for (std::size_t j = 0; j < swap.evicted_headers.size(); ++j) {
        if (j != 0) out << ",";
        out << Hex(swap.evicted_headers[j]);
      }
    }
    out << "\n";
  }
  for (const DynamicKernel& kernel : kernels) {
    std::snprintf(
        line, sizeof line,
        "kernel %s%s: iters=%llu entries=%llu swCycles=%llu memAcc=%llu "
        "speedup=%.1fx\n",
        kernel.name.c_str(), kernel.evicted ? " (evicted)" : "",
        static_cast<unsigned long long>(kernel.observed.header_hits),
        static_cast<unsigned long long>(kernel.observed.entries),
        static_cast<unsigned long long>(kernel.observed.cycles),
        static_cast<unsigned long long>(kernel.observed.mem_accesses),
        kernel.estimate.kernel_speedup);
    out << line;
  }
  for (const std::string& reason : rejected) {
    out << "rejected " << reason << "\n";
  }
  std::snprintf(line, sizeof line,
                "estimate: sw=%.3fms dynamic=%.3fms speedup=%.2fx "
                "energy-savings=%.0f%%\n",
                estimate.sw_time * 1e3, estimate.partitioned_time * 1e3,
                estimate.speedup, estimate.energy_savings * 100.0);
  out << line;
  return out.str();
}

}  // namespace b2h::dynamic
