#include "dynamic/hot_region.hpp"

#include "support/error.hpp"

namespace b2h::dynamic {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

HotRegionCache::HotRegionCache(std::size_t entries,
                               std::uint64_t hot_threshold)
    : threshold_(hot_threshold) {
  Check(entries > 0, "HotRegionCache: zero entries");
  Check(hot_threshold > 0, "HotRegionCache: zero threshold");
  slots_.resize(RoundUpPow2(entries));
  mask_ = slots_.size() - 1;
}

std::uint32_t HotRegionCache::MaxLatchFor(std::uint32_t header_pc) const {
  const Slot& slot = slots_[(header_pc >> 2) & mask_];
  return slot.header_pc == header_pc ? slot.max_latch_pc : 0u;
}

}  // namespace b2h::dynamic
