// Online hot-region detector: a bounded, direct-mapped cache of loop-header
// counters in the style of on-chip loop profilers (Lysecky/Vahid's frequent
// loop detector watches short backward branches in hardware; see PAPERS.md).
//
// The detector deliberately is NOT the full ExecProfile: it models the small
// associative memory a runtime partitioner can afford next to the CPU.  Each
// taken backward branch bumps a saturating counter for its target (the loop
// header).  A conflicting header decrements the resident counter and takes
// the slot over when it reaches zero, so persistently hot loops survive
// sporadic traffic.  Everything is deterministic: same branch stream, same
// detections.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mips/simulator.hpp"

namespace b2h::dynamic {

/// A header crossing the hotness threshold.
struct HotEvent {
  std::uint32_t header_pc = 0;
  std::uint32_t max_latch_pc = 0;  ///< widest backward branch seen so far
  std::uint64_t count = 0;         ///< detector count at the crossing
};

class HotRegionCache {
 public:
  /// `entries` is rounded up to a power of two; `hot_threshold` is the
  /// count at which Observe reports a header (once per cache residency).
  HotRegionCache(std::size_t entries, std::uint64_t hot_threshold);

  /// Record one taken backward branch `from_pc` -> `target_pc`.  Returns the
  /// header when this observation crosses the threshold.  Inline: this runs
  /// for every latch event the simulator batches out.
  std::optional<HotEvent> Observe(std::uint32_t target_pc,
                                  std::uint32_t from_pc) {
    ++events_;
    Slot& slot = slots_[(target_pc >> 2) & mask_];
    if (slot.header_pc != target_pc) {
      // Conflict: the resident header defends its slot; a new header takes
      // over only once the resident counter has been worn down to zero.
      if (slot.header_pc != 0 && slot.count > 0) {
        --slot.count;
        return std::nullopt;
      }
      slot.header_pc = target_pc;
      slot.max_latch_pc = from_pc;
      slot.count = 0;
      slot.reported = false;
    }
    if (from_pc > slot.max_latch_pc) slot.max_latch_pc = from_pc;
    ++slot.count;
    if (!slot.reported && slot.count >= threshold_) [[unlikely]] {
      slot.reported = true;
      return HotEvent{slot.header_pc, slot.max_latch_pc, slot.count};
    }
    return std::nullopt;
  }

  /// Widest latch recorded for a currently cached header (0 when absent).
  [[nodiscard]] std::uint32_t MaxLatchFor(std::uint32_t header_pc) const;

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t threshold() const noexcept { return threshold_; }

 private:
  struct Slot {
    std::uint32_t header_pc = 0;  ///< 0 = empty
    std::uint32_t max_latch_pc = 0;
    std::uint64_t count = 0;
    bool reported = false;
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint64_t threshold_ = 0;
  std::uint64_t events_ = 0;
};

/// Detection-only observer: feeds every latch event to a HotRegionCache and
/// nothing else.  With an unreachable threshold this is the pure detector,
/// which is what the hook-overhead bench and test both measure.
class DetectionOnlyObserver final : public mips::RunObserver {
 public:
  explicit DetectionOnlyObserver(std::size_t entries = 64,
                                 std::uint64_t hot_threshold = UINT64_MAX)
      : cache_(entries, hot_threshold) {}

  void OnBackwardBranches(std::span<const mips::BranchEvent> events,
                          const mips::RunResult&) override {
    for (const mips::BranchEvent& event : events) {
      cache_.Observe(event.target_pc, event.from_pc);
    }
  }

  [[nodiscard]] const HotRegionCache& cache() const { return cache_; }

 private:
  HotRegionCache cache_;
};

}  // namespace b2h::dynamic
