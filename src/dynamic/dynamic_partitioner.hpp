// Dynamic hardware/software partitioning: partition *while the program
// runs*.
//
// The source paper's whole argument for decompilation-based partitioning is
// that it is fast and source-free enough to run dynamically, on-chip, while
// the application executes (paper §1, §6).  This subsystem closes that loop
// as a cosimulation:
//
//   1. The MIPS simulator executes the binary with the instrumentation
//      hooks enabled (mips::RunObserver).
//   2. An online detector (HotRegionCache) watches taken backward branches;
//      when a loop header crosses the hotness threshold, the partitioner
//   3. incrementally decompiles just the enclosing function
//      (PassManager::RunAt), synthesizes the loop, checks area and
//      profitability (partition::DynamicPolicy), and
//   4. swaps the kernel in: the simulator keeps executing the loop
//      functionally (semantics never change), but its instructions are
//      accounted into a hardware range whose CPU cycles are later re-priced
//      at FPGA cycles + communication cost.
//
// The resulting DynamicRun reports the same AppEstimate shape as the static
// flow, so the dynamic outcome can be compared directly against the static
// oracle (partition::RunFlow / Toolchain) on the same binary.  Dynamic
// speedups are expected to trail static ones: pre-detection iterations run
// in software, and without the global alias view arrays cannot be made
// FPGA-resident.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "partition/dynamic_policy.hpp"
#include "partition/estimate.hpp"
#include "partition/platform.hpp"
#include "support/error.hpp"
#include "synth/synth.hpp"

namespace b2h::dynamic {

struct DynamicOptions {
  partition::DynamicPolicy policy;
  std::string pipeline = "default";   ///< PassManager spec for region lifts
  synth::SynthOptions synth;
  std::uint64_t max_instructions = 200'000'000;
  bool verify_ir = true;
};

/// One kernel swap-in, time-stamped in *simulated* time.  The host
/// wall-clock CAD costs are kept for benchmarking but excluded from
/// Report() so reports stay deterministic.
struct SwapEvent {
  std::uint32_t header_pc = 0;
  std::uint32_t range_lo = 0;
  std::uint32_t range_hi = 0;
  std::uint64_t at_instruction = 0;  ///< simulated instructions at swap
  std::uint64_t at_cycle = 0;        ///< simulated CPU cycles at swap
  std::uint64_t detect_count = 0;    ///< detector count at the trigger
  double area_gates = 0.0;
  double clock_mhz = 0.0;
  double hw_cycles_per_iteration = 0.0;
  bool dma_staged = false;  ///< arrays staged into BRAM per invocation
  double projected_speedup = 0.0;    ///< per-iteration gate that admitted it
  std::vector<std::uint32_t> evicted_headers;
  double decompile_ms = 0.0;  ///< host wall clock (not in Report())
  double synth_ms = 0.0;      ///< host wall clock (not in Report())
};

/// Post-swap accounting for one mapped region [lo, hi), derived from
/// profile deltas between the swap-in snapshot and the end of the region's
/// mapped window (eviction or end of run): what the loop *would have cost*
/// on the CPU while its kernel was configured, re-priced at FPGA speed by
/// the estimator.
struct RegionWindowStats {
  std::uint32_t lo = 0;            ///< first pc of the mapped region
  std::uint32_t hi = 0;            ///< one past the last mapped pc
  std::uint32_t header_pc = 0;     ///< loop header (kernel entry point)
  std::uint64_t instructions = 0;  ///< simulated instructions inside
  std::uint64_t cycles = 0;        ///< CPU cycles accrued inside
  std::uint64_t entries = 0;       ///< entries from outside via the header
  std::uint64_t header_hits = 0;   ///< header executions (= loop iterations)
  std::uint64_t mem_accesses = 0;  ///< loads + stores executed inside
};

/// A kernel that was mapped at some point during the run.
struct DynamicKernel {
  std::string name;
  std::uint32_t header_pc = 0;
  bool evicted = false;
  RegionWindowStats observed;           ///< post-swap in-range accounting
  partition::KernelEstimate estimate;   ///< re-priced at FPGA speed
};

struct DynamicRun {
  std::string binary_name;
  std::string platform_name;
  mips::RunResult run;                 ///< the full instrumented run
  std::vector<SwapEvent> swaps;
  std::vector<DynamicKernel> kernels;
  std::vector<std::string> rejected;   ///< declined candidates, with reasons
  partition::AppEstimate estimate;     ///< dynamic application estimate
  std::uint64_t detector_events = 0;   ///< taken backward branches observed
  double time_to_first_kernel_ms = 0;  ///< host wall clock (0 = no kernel)
  double online_cad_ms = 0;            ///< total decompile+synth wall time
  /// Total online CAD cost converted into simulated CPU cycles via
  /// DynamicPolicy::cad_cycles_per_ms (ROADMAP: report CAD latency in
  /// *simulated* time, not just host wall clock).
  std::uint64_t cad_simulated_cycles = 0;
  /// Simulated cycle at which the first kernel is live: the swap's
  /// simulated-time position plus every preceding CAD attempt's converted
  /// cost (0 = no kernel).  With cad_cycles_per_ms = 0 this is exactly
  /// swaps.front().at_cycle.
  std::uint64_t time_to_first_kernel_cycles = 0;

  /// Deterministic report: same binary + config => identical text (host
  /// wall-clock fields are deliberately omitted).
  [[nodiscard]] std::string Report() const;
};

class DynamicPartitioner {
 public:
  explicit DynamicPartitioner(partition::Platform platform,
                              DynamicOptions options = {},
                              std::string platform_name = "custom");

  /// Execute `binary` under the online partitioner.  Fails when the run
  /// does not complete (fault / budget) or the pipeline spec is invalid;
  /// per-candidate decompilation/synthesis failures are recorded in
  /// DynamicRun::rejected, never fatal.
  [[nodiscard]] Result<DynamicRun> Run(
      std::shared_ptr<const mips::SoftBinary> binary,
      std::string binary_name = "binary") const;

 private:
  partition::Platform platform_;
  DynamicOptions options_;
  std::string platform_name_;
};

}  // namespace b2h::dynamic
