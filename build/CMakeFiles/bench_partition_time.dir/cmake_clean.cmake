file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_time.dir/bench/bench_partition_time.cpp.o"
  "CMakeFiles/bench_partition_time.dir/bench/bench_partition_time.cpp.o.d"
  "bench/bench_partition_time"
  "bench/bench_partition_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
