# Empty dependencies file for bench_partition_time.
# This may be replaced when dependencies are built.
