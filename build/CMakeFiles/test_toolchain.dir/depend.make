# Empty dependencies file for test_toolchain.
# This may be replaced when dependencies are built.
