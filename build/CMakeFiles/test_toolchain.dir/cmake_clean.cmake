file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain.dir/tests/test_toolchain.cpp.o"
  "CMakeFiles/test_toolchain.dir/tests/test_toolchain.cpp.o.d"
  "test_toolchain"
  "test_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
