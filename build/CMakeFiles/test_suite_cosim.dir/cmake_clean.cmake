file(REMOVE_RECURSE
  "CMakeFiles/test_suite_cosim.dir/tests/test_suite_cosim.cpp.o"
  "CMakeFiles/test_suite_cosim.dir/tests/test_suite_cosim.cpp.o.d"
  "test_suite_cosim"
  "test_suite_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
