# Empty dependencies file for test_suite_cosim.
# This may be replaced when dependencies are built.
