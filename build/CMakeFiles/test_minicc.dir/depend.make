# Empty dependencies file for test_minicc.
# This may be replaced when dependencies are built.
