file(REMOVE_RECURSE
  "CMakeFiles/test_minicc.dir/tests/test_minicc.cpp.o"
  "CMakeFiles/test_minicc.dir/tests/test_minicc.cpp.o.d"
  "test_minicc"
  "test_minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
