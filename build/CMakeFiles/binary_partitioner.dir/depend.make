# Empty dependencies file for binary_partitioner.
# This may be replaced when dependencies are built.
