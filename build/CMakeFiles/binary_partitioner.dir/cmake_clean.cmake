file(REMOVE_RECURSE
  "CMakeFiles/binary_partitioner.dir/examples/binary_partitioner.cpp.o"
  "CMakeFiles/binary_partitioner.dir/examples/binary_partitioner.cpp.o.d"
  "examples/binary_partitioner"
  "examples/binary_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
