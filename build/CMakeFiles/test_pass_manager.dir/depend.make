# Empty dependencies file for test_pass_manager.
# This may be replaced when dependencies are built.
