file(REMOVE_RECURSE
  "CMakeFiles/test_pass_manager.dir/tests/test_pass_manager.cpp.o"
  "CMakeFiles/test_pass_manager.dir/tests/test_pass_manager.cpp.o.d"
  "test_pass_manager"
  "test_pass_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pass_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
