file(REMOVE_RECURSE
  "CMakeFiles/test_alias.dir/tests/test_alias.cpp.o"
  "CMakeFiles/test_alias.dir/tests/test_alias.cpp.o.d"
  "test_alias"
  "test_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
