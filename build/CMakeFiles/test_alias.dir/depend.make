# Empty dependencies file for test_alias.
# This may be replaced when dependencies are built.
