file(REMOVE_RECURSE
  "CMakeFiles/bench_optlevels.dir/bench/bench_optlevels.cpp.o"
  "CMakeFiles/bench_optlevels.dir/bench/bench_optlevels.cpp.o.d"
  "bench/bench_optlevels"
  "bench/bench_optlevels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optlevels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
