# Empty dependencies file for bench_optlevels.
# This may be replaced when dependencies are built.
