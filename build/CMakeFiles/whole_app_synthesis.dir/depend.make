# Empty dependencies file for whole_app_synthesis.
# This may be replaced when dependencies are built.
