file(REMOVE_RECURSE
  "CMakeFiles/whole_app_synthesis.dir/examples/whole_app_synthesis.cpp.o"
  "CMakeFiles/whole_app_synthesis.dir/examples/whole_app_synthesis.cpp.o.d"
  "examples/whole_app_synthesis"
  "examples/whole_app_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_app_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
