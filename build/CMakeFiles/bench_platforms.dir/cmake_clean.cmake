file(REMOVE_RECURSE
  "CMakeFiles/bench_platforms.dir/bench/bench_platforms.cpp.o"
  "CMakeFiles/bench_platforms.dir/bench/bench_platforms.cpp.o.d"
  "bench/bench_platforms"
  "bench/bench_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
