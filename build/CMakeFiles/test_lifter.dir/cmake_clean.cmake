file(REMOVE_RECURSE
  "CMakeFiles/test_lifter.dir/tests/test_lifter.cpp.o"
  "CMakeFiles/test_lifter.dir/tests/test_lifter.cpp.o.d"
  "test_lifter"
  "test_lifter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
