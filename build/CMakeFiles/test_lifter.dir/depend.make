# Empty dependencies file for test_lifter.
# This may be replaced when dependencies are built.
