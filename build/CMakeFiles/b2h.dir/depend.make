# Empty dependencies file for b2h.
# This may be replaced when dependencies are built.
