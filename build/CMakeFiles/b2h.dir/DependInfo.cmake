
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/alias.cpp" "CMakeFiles/b2h.dir/src/decomp/alias.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/alias.cpp.o.d"
  "/root/repo/src/decomp/constprop.cpp" "CMakeFiles/b2h.dir/src/decomp/constprop.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/constprop.cpp.o.d"
  "/root/repo/src/decomp/if_convert.cpp" "CMakeFiles/b2h.dir/src/decomp/if_convert.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/if_convert.cpp.o.d"
  "/root/repo/src/decomp/inline.cpp" "CMakeFiles/b2h.dir/src/decomp/inline.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/inline.cpp.o.d"
  "/root/repo/src/decomp/lifter.cpp" "CMakeFiles/b2h.dir/src/decomp/lifter.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/lifter.cpp.o.d"
  "/root/repo/src/decomp/loop_reroll.cpp" "CMakeFiles/b2h.dir/src/decomp/loop_reroll.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/loop_reroll.cpp.o.d"
  "/root/repo/src/decomp/pass_manager.cpp" "CMakeFiles/b2h.dir/src/decomp/pass_manager.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/pass_manager.cpp.o.d"
  "/root/repo/src/decomp/pipeline.cpp" "CMakeFiles/b2h.dir/src/decomp/pipeline.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/pipeline.cpp.o.d"
  "/root/repo/src/decomp/size_reduction.cpp" "CMakeFiles/b2h.dir/src/decomp/size_reduction.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/size_reduction.cpp.o.d"
  "/root/repo/src/decomp/stack_removal.cpp" "CMakeFiles/b2h.dir/src/decomp/stack_removal.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/stack_removal.cpp.o.d"
  "/root/repo/src/decomp/strength.cpp" "CMakeFiles/b2h.dir/src/decomp/strength.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/strength.cpp.o.d"
  "/root/repo/src/decomp/structure.cpp" "CMakeFiles/b2h.dir/src/decomp/structure.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/decomp/structure.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "CMakeFiles/b2h.dir/src/ir/dominators.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/dominators.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "CMakeFiles/b2h.dir/src/ir/interp.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/interp.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "CMakeFiles/b2h.dir/src/ir/ir.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/ir.cpp.o.d"
  "/root/repo/src/ir/loops.cpp" "CMakeFiles/b2h.dir/src/ir/loops.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/loops.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "CMakeFiles/b2h.dir/src/ir/printer.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "CMakeFiles/b2h.dir/src/ir/verifier.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/ir/verifier.cpp.o.d"
  "/root/repo/src/minicc/codegen.cpp" "CMakeFiles/b2h.dir/src/minicc/codegen.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/minicc/codegen.cpp.o.d"
  "/root/repo/src/minicc/parser.cpp" "CMakeFiles/b2h.dir/src/minicc/parser.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/minicc/parser.cpp.o.d"
  "/root/repo/src/mips/assembler.cpp" "CMakeFiles/b2h.dir/src/mips/assembler.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/mips/assembler.cpp.o.d"
  "/root/repo/src/mips/isa.cpp" "CMakeFiles/b2h.dir/src/mips/isa.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/mips/isa.cpp.o.d"
  "/root/repo/src/mips/simulator.cpp" "CMakeFiles/b2h.dir/src/mips/simulator.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/mips/simulator.cpp.o.d"
  "/root/repo/src/partition/estimate.cpp" "CMakeFiles/b2h.dir/src/partition/estimate.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/partition/estimate.cpp.o.d"
  "/root/repo/src/partition/flow.cpp" "CMakeFiles/b2h.dir/src/partition/flow.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/partition/flow.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "CMakeFiles/b2h.dir/src/partition/partitioner.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/partition/partitioner.cpp.o.d"
  "/root/repo/src/suite/benchmarks.cpp" "CMakeFiles/b2h.dir/src/suite/benchmarks.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/suite/benchmarks.cpp.o.d"
  "/root/repo/src/suite/runner.cpp" "CMakeFiles/b2h.dir/src/suite/runner.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/suite/runner.cpp.o.d"
  "/root/repo/src/support/error.cpp" "CMakeFiles/b2h.dir/src/support/error.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/support/error.cpp.o.d"
  "/root/repo/src/synth/area.cpp" "CMakeFiles/b2h.dir/src/synth/area.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/area.cpp.o.d"
  "/root/repo/src/synth/hw_region.cpp" "CMakeFiles/b2h.dir/src/synth/hw_region.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/hw_region.cpp.o.d"
  "/root/repo/src/synth/resource.cpp" "CMakeFiles/b2h.dir/src/synth/resource.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/resource.cpp.o.d"
  "/root/repo/src/synth/rtl_sim.cpp" "CMakeFiles/b2h.dir/src/synth/rtl_sim.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/rtl_sim.cpp.o.d"
  "/root/repo/src/synth/schedule.cpp" "CMakeFiles/b2h.dir/src/synth/schedule.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/schedule.cpp.o.d"
  "/root/repo/src/synth/synth.cpp" "CMakeFiles/b2h.dir/src/synth/synth.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/synth.cpp.o.d"
  "/root/repo/src/synth/vhdl.cpp" "CMakeFiles/b2h.dir/src/synth/vhdl.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/synth/vhdl.cpp.o.d"
  "/root/repo/src/toolchain/toolchain.cpp" "CMakeFiles/b2h.dir/src/toolchain/toolchain.cpp.o" "gcc" "CMakeFiles/b2h.dir/src/toolchain/toolchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
