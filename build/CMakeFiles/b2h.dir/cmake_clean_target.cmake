file(REMOVE_RECURSE
  "libb2h.a"
)
